(* Wire-level chaos suite — backs the [@net-smoke] dune alias.

   The last failure domain: the byte stream between client and daemon.
   Three layers under test, separately and then together:

   - Service.Net_faults: the seed-driven byte-stream fault injector
     (splits, garbage, truncation, resets, dribble, duplicates) — pure in
     (profile, seed, conn, payload), so everything here replays;
   - Service.Client: the resilient typed client — per-attempt timeouts,
     capped seeded-jitter backoff, BUSY retry-after honored, total
     deadline propagated as deadline-ms, idempotent retries that reject
     wrong-key answers;
   - Service.Daemon hardening: request-line caps, the slow-loris request
     deadline, bounded write buffers with partial-write continuation, and
     accept-time BUSY load shedding at the connection ceiling.

   The finale is the live-socket chaos campaign: N concurrent faulty
   clients at a 30% fault rate through a kill -9 and restart of the
   daemon, with gold-matched answers, exact warm-phase hit/tune ledger
   accounting, a salvaged cache, and a byte-for-byte reproducible
   transcript.  NET_DEEP=1 widens the sweep to 16 seeds. *)

let deep = Sys.getenv_opt "NET_DEEP" <> None
let campaign_seeds = List.init (if deep then 16 else 1) (fun i -> i)

(* Salvage warnings from deliberately corrupted caches are expected noise;
   EPIPE from deliberately cut connections must not kill the runner. *)
let () = Util.Log.set_quiet true
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let temp_cache () =
  let path = Filename.temp_file "net" ".cache" in
  Sys.remove path;
  path

let fast =
  { Service.Engine.default_settings with budget_trials = 16; max_pending = 16 }

let spec_of_line line =
  match Service.Protocol.parse_request line with
  | Ok (Service.Protocol.Tune r) -> r
  | _ -> Alcotest.failf "helper line does not parse: %s" line

let parse_ok line =
  match Service.Protocol.parse_response line with
  | Some (Service.Protocol.Result p) -> p
  | _ -> Alcotest.failf "expected an OK response, got: %s" line

let clean_client =
  (* Faultless client used for readiness polling and warm phases. *)
  {
    Service.Client.default_settings with
    max_attempts = 100;
    attempt_timeout_ms = 1000;
    backoff_base_ms = 10;
    backoff_cap_ms = 50;
  }

let wait_ready socket =
  match Service.Client.ask_raw ~settings:clean_client ~socket "PING" with
  | Ok Service.Protocol.Pong, _ -> ()
  | _ -> Alcotest.fail "daemon did not become ready"

(* ------------------------------------------------------------------ *)
(* Net_faults: purity, delivery invariants, executor. *)

let concat_sends ops =
  let buf = Buffer.create 64 in
  let rec go = function
    | [] -> Buffer.contents buf
    | Service.Net_faults.Send s :: rest ->
      Buffer.add_string buf s;
      go rest
    | Service.Net_faults.Pause_ms _ :: rest -> go rest
    | Service.Net_faults.Close :: _ -> Buffer.contents buf
  in
  go ops

let test_faults_pure () =
  let line = "TUNE cin=4 size=8 cout=4 k=3" in
  let profile = Service.Net_faults.default in
  for seed = 0 to 20 do
    for conn = 0 to 5 do
      let p1 = Service.Net_faults.plan profile ~seed ~conn line in
      let p2 = Service.Net_faults.plan profile ~seed ~conn line in
      Alcotest.(check bool) "plans replay bit-identically" true (p1 = p2)
    done
  done;
  (* Different connections diverge (the whole point of the conn id). *)
  let distinct =
    List.init 64 (fun conn ->
        Service.Net_faults.plan profile ~seed:7 ~conn line)
    |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "plans vary across connections" true (distinct > 10)

(* The delivery contract per fault kind, swept over many (seed, conn):
   no-fault and Dribble deliver the payload exactly; Duplicate exactly
   twice; Garbage delivers a newline-terminated corruption; Truncate and
   Reset close, Truncate strictly short of the newline. *)
let test_faults_delivery_contract () =
  let line = "TUNE cin=8 size=8 cout=4 k=1 arch=v100" in
  let payload = line ^ "\n" in
  let profile = Service.Net_faults.default in
  for seed = 0 to 40 do
    for conn = 0 to 7 do
      let fault = Service.Net_faults.fault_of profile ~seed ~conn in
      let ops = Service.Net_faults.plan profile ~seed ~conn line in
      let sent = concat_sends ops in
      let delivers = Service.Net_faults.delivers ops in
      match fault with
      | None | Some Service.Net_faults.Dribble ->
        Alcotest.(check bool) "delivers" true delivers;
        Alcotest.(check string) "payload intact" payload sent
      | Some Service.Net_faults.Duplicate ->
        Alcotest.(check bool) "delivers" true delivers;
        Alcotest.(check string) "payload exactly twice" (payload ^ payload) sent
      | Some Service.Net_faults.Garbage ->
        Alcotest.(check bool) "delivers" true delivers;
        Alcotest.(check bool) "corrupted but framed" true
          (String.length sent > String.length payload
          && sent.[String.length sent - 1] = '\n'
          && sent <> payload)
      | Some Service.Net_faults.Truncate ->
        Alcotest.(check bool) "closes" false delivers;
        Alcotest.(check bool) "strict prefix, newline never arrives" true
          (String.length sent < String.length line
          && sent = String.sub payload 0 (String.length sent))
      | Some Service.Net_faults.Reset ->
        Alcotest.(check bool) "closes" false delivers;
        Alcotest.(check string) "full payload before the cut" payload sent
    done
  done

let test_faults_apply () =
  let line = "PING" in
  let profile = Service.Net_faults.only [ Service.Net_faults.Reset ] in
  let ops = Service.Net_faults.plan profile ~seed:3 ~conn:0 line in
  let buf = Buffer.create 16 in
  let closes = ref 0 in
  let status =
    Service.Net_faults.apply ~sleep_ms:ignore
      ~write:(Buffer.add_string buf)
      ~close:(fun () -> incr closes)
      ops
  in
  Alcotest.(check bool) "reset plan reports closed" true (status = `Closed);
  Alcotest.(check int) "close called exactly once" 1 !closes;
  Alcotest.(check string) "writes ran up to the close" (concat_sends ops)
    (Buffer.contents buf);
  (* A clean profile delivers and never closes. *)
  let ops = Service.Net_faults.plan Service.Net_faults.none ~seed:3 ~conn:0 line in
  let buf = Buffer.create 16 in
  let status =
    Service.Net_faults.apply ~sleep_ms:ignore
      ~write:(Buffer.add_string buf)
      ~close:(fun () -> Alcotest.fail "clean plan closed")
      ops
  in
  Alcotest.(check bool) "clean plan delivers" true (status = `Delivered);
  Alcotest.(check string) "clean payload intact" (line ^ "\n") (Buffer.contents buf)

let qcheck_faults_exact_framing =
  QCheck.Test.make ~name:"deliverable plans reassemble the payload exactly"
    ~count:(if deep then 500 else 150)
    QCheck.(triple small_nat small_nat (QCheck.string_gen_of_size (QCheck.Gen.int_range 1 60) QCheck.Gen.printable))
    (fun (seed, conn, line) ->
      QCheck.assume (not (String.contains line '\n'));
      let payload = line ^ "\n" in
      let ops = Service.Net_faults.plan Service.Net_faults.default ~seed ~conn line in
      let sent = concat_sends ops in
      match Service.Net_faults.fault_of Service.Net_faults.default ~seed ~conn with
      | None | Some Service.Net_faults.Dribble -> String.equal sent payload
      | Some Service.Net_faults.Duplicate -> String.equal sent (payload ^ payload)
      | Some Service.Net_faults.Reset -> String.equal sent payload
      | Some Service.Net_faults.Truncate ->
        String.length sent < String.length payload
        && String.equal sent (String.sub payload 0 (String.length sent))
      | Some Service.Net_faults.Garbage ->
        String.length sent >= String.length payload
        && sent.[String.length sent - 1] = '\n')

(* ------------------------------------------------------------------ *)
(* Outbuf: bounded buffering, partial-write continuation, no interleave. *)

let test_outbuf_bounds () =
  let out = Service.Daemon.Outbuf.create ~max_bytes:16 in
  Alcotest.(check bool) "fits" true
    (Service.Daemon.Outbuf.enqueue out "0123456789" = `Ok);
  Alcotest.(check bool) "overflow refused, nothing buffered" true
    (Service.Daemon.Outbuf.enqueue out "0123456789" = `Overflow);
  Alcotest.(check int) "pending unchanged by refused enqueue" 10
    (Service.Daemon.Outbuf.pending out)

(* The partial-write core: a small kernel send buffer forces `Pending
   mid-response; continuation steps complete the stream, and because lines
   are enqueued atomically the receiver sees every response contiguous —
   never two responses interleaved. *)
let test_outbuf_partial_write_continuation () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let out = Service.Daemon.Outbuf.create ~max_bytes:(1 lsl 20) in
  let line n = Printf.sprintf "RESP %04d %s\n" n (String.make 200 'x') in
  let total = 200 in
  for n = 0 to total - 1 do
    match Service.Daemon.Outbuf.enqueue out (line n) with
    | `Ok -> ()
    | `Overflow -> Alcotest.fail "unexpected overflow"
  done;
  let received = Buffer.create (total * 210) in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read b chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes received chunk 0 n;
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let saw_pending = ref false in
  let rec pump guard =
    if guard = 0 then Alcotest.fail "flush did not converge";
    match Service.Daemon.Outbuf.flush out a with
    | `Closed -> Alcotest.fail "peer closed unexpectedly"
    | `Done -> drain ()
    | `Pending ->
      saw_pending := true;
      drain ();
      pump (guard - 1)
  in
  pump 10_000;
  Alcotest.(check bool) "kernel pushed back at least once" true !saw_pending;
  let expected = String.concat "" (List.init total line) in
  Alcotest.(check int) "every byte arrived" (String.length expected)
    (String.length (Buffer.contents received));
  Alcotest.(check bool) "responses contiguous and in order" true
    (String.equal expected (Buffer.contents received));
  Unix.close a;
  Unix.close b

let test_outbuf_peer_vanished () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.close b;
  let out = Service.Daemon.Outbuf.create ~max_bytes:1024 in
  ignore (Service.Daemon.Outbuf.enqueue out "PONG\n");
  Alcotest.(check bool) "flush to a vanished peer reports closed" true
    (Service.Daemon.Outbuf.flush out a = `Closed);
  Unix.close a

(* ------------------------------------------------------------------ *)
(* Daemon hardening, against a live socket. *)

let start_daemon ?settings:(s = fast) ?(read_deadline_s = 30.0)
    ?(request_deadline_s = 10.0) ?(max_conns = 64) ~socket ~cache () =
  let stop = Atomic.make false in
  let hard_stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Service.Daemon.serve ~socket ~cache ~settings:s ~stop ~hard_stop
          ~read_deadline_s ~request_deadline_s ~max_conns
          ~install_signal_handlers:false ())
  in
  (stop, hard_stop, d)

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec attempt tries =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
      Unix.sleepf 0.05;
      attempt (tries - 1)
  in
  attempt 100;
  fd

let send_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let read_line_fd fd =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> Alcotest.failf "daemon closed before answering (got %S)" (Buffer.contents buf)
    | _ ->
      if Bytes.get byte 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
  in
  go ()

let expect_eof fd =
  let byte = Bytes.create 1 in
  match Unix.read fd byte 0 1 with
  | 0 -> ()
  | _ -> Alcotest.fail "expected the daemon to close the connection"
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()

let test_daemon_oversized_line () =
  let dir = temp_dir "net-oversize" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d = start_daemon ~socket ~cache:(Filename.concat dir "c") () in
  wait_ready socket;
  let fd = connect_raw socket in
  (* An unterminated line past the protocol cap: typed ERR parse, close. *)
  send_raw fd (String.make (Service.Protocol.max_line_bytes + 1000) 'x');
  (match Service.Protocol.parse_response (read_line_fd fd) with
  | Some (Service.Protocol.Error (Service.Protocol.Parse _)) -> ()
  | _ -> Alcotest.fail "expected ERR parse for the oversized line");
  expect_eof fd;
  Unix.close fd;
  (* The daemon survived. *)
  let fd2 = connect_raw socket in
  send_raw fd2 "PING\n";
  Alcotest.(check string) "daemon alive after the flood" "PONG" (read_line_fd fd2);
  Unix.close fd2;
  Atomic.set stop true;
  ignore (Domain.join d)

let test_daemon_slow_loris () =
  let dir = temp_dir "net-loris" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d =
    start_daemon ~request_deadline_s:0.2 ~socket ~cache:(Filename.concat dir "c") ()
  in
  wait_ready socket;
  let fd = connect_raw socket in
  (* Dribble a request one byte at a time, never completing the line.
     Fresh bytes must NOT reset the request deadline. *)
  send_raw fd "T";
  (* The daemon may close us mid-dribble once the deadline fires; the
     timeout line it wrote first stays readable from the socket buffer. *)
  (try
     for _ = 1 to 10 do
       Unix.sleepf 0.06;
       send_raw fd "U"
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  (match Service.Protocol.parse_response (read_line_fd fd) with
  | Some (Service.Protocol.Error Service.Protocol.Timeout) -> ()
  | _ -> Alcotest.fail "expected ERR timeout for the slow-loris client");
  expect_eof fd;
  Unix.close fd;
  Atomic.set stop true;
  ignore (Domain.join d)

let test_daemon_connection_ceiling () =
  let dir = temp_dir "net-ceiling" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d =
    start_daemon ~max_conns:2 ~socket ~cache:(Filename.concat dir "c") ()
  in
  wait_ready socket;
  let fd1 = connect_raw socket in
  send_raw fd1 "PING\n";
  Alcotest.(check string) "conn 1 served" "PONG" (read_line_fd fd1);
  let fd2 = connect_raw socket in
  send_raw fd2 "PING\n";
  Alcotest.(check string) "conn 2 served" "PONG" (read_line_fd fd2);
  (* Past the ceiling: BUSY at accept, then close — load is shed before the
     backlog grows. *)
  let fd3 = connect_raw socket in
  (match Service.Protocol.parse_response (read_line_fd fd3) with
  | Some (Service.Protocol.Busy { retry_after_s }) ->
    Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0)
  | _ -> Alcotest.fail "expected BUSY at the connection ceiling");
  expect_eof fd3;
  Unix.close fd3;
  (* Freeing a slot restores service. *)
  Unix.close fd1;
  Unix.sleepf 0.3;
  let fd4 = connect_raw socket in
  send_raw fd4 "PING\n";
  Alcotest.(check string) "slot freed, served again" "PONG" (read_line_fd fd4);
  Unix.close fd4;
  Unix.close fd2;
  Atomic.set stop true;
  let engine = Domain.join d in
  Alcotest.(check bool) "shed counted in busy_rejected" true
    ((Service.Engine.counters engine).busy_rejected >= 1)

let test_daemon_binary_garbage () =
  let dir = temp_dir "net-garbage" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d = start_daemon ~socket ~cache:(Filename.concat dir "c") () in
  wait_ready socket;
  let fd = connect_raw socket in
  let rng = Util.Rng.create 11 in
  for _ = 1 to 5 do
    let junk =
      String.init 40 (fun _ ->
          (* any byte except the line terminator *)
          match Char.chr (Util.Rng.int rng 256) with '\n' -> '?' | c -> c)
    in
    send_raw fd (junk ^ "\n");
    let reply = read_line_fd fd in
    Alcotest.(check bool) ("typed reply to garbage: " ^ String.escaped reply) true
      (Service.Protocol.is_typed_line reply)
  done;
  send_raw fd "PING\n";
  Alcotest.(check string) "still serving after garbage" "PONG" (read_line_fd fd);
  Unix.close fd;
  Atomic.set stop true;
  ignore (Domain.join d)

(* A pipelined burst answered while the client reads nothing: responses are
   buffered, continued across select iterations, and arrive whole and in
   order — the live half of the partial-write story. *)
let test_daemon_pipelined_burst () =
  let dir = temp_dir "net-burst" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d = start_daemon ~socket ~cache:(Filename.concat dir "c") () in
  wait_ready socket;
  let fd = connect_raw socket in
  let total = 100 in
  let burst = String.concat "" (List.init total (fun _ -> "STATS\n")) in
  send_raw fd burst;
  let replies = List.init total (fun _ -> read_line_fd fd) in
  List.iter
    (fun reply ->
      match Service.Protocol.parse_response reply with
      | Some (Service.Protocol.Stats_reply _) -> ()
      | _ -> Alcotest.failf "burst reply not a whole STATS line: %s" reply)
    replies;
  Unix.close fd;
  Atomic.set stop true;
  ignore (Domain.join d)

(* ------------------------------------------------------------------ *)
(* Engine deadline shedding (monotonic injectable clock). *)

let test_engine_sheds_expired_work () =
  let clock, set_time = Util.Clock.manual 0.0 in
  let cache = temp_cache () in
  let e =
    Service.Engine.create ~settings:fast
      ~now_ms:(fun () -> clock () *. 1000.)
      ~cache ()
  in
  let c = Service.Engine.connect e in
  (* Two distinct shapes, both with 100ms deadlines.  The first step tunes
     one; the clock then jumps past the second's deadline. *)
  Service.Engine.submit e c "TUNE cin=4 size=8 cout=4 k=3 deadline-ms=100";
  Service.Engine.submit e c "TUNE cin=8 size=8 cout=4 k=1 deadline-ms=100";
  let first = Service.Engine.step e in
  Alcotest.(check int) "first shape answered in time" 1 (List.length first);
  set_time 0.5;
  let rest = Service.Engine.run_until_idle e in
  (match rest with
  | [ (_, line) ] -> (
    match Service.Protocol.parse_response line with
    | Some (Service.Protocol.Error Service.Protocol.Deadline) -> ()
    | _ -> Alcotest.failf "expected ERR deadline, got: %s" line)
  | _ -> Alcotest.failf "expected one shed response, got %d" (List.length rest));
  let counters = Service.Engine.counters e in
  Alcotest.(check int) "one tune ran" 1 counters.tunes_run;
  Alcotest.(check int) "one tune shed" 1 counters.deadline_shed;
  (* A patient waiter pins the job: coalescing takes the max deadline, and
     a waiter with no deadline makes the job undeadlined. *)
  Service.Engine.submit e c "TUNE cin=4 size=10 cout=8 k=3 deadline-ms=100";
  Service.Engine.submit e c "TUNE cin=4 size=10 cout=8 k=3";
  set_time 5.0;
  let out = Service.Engine.run_until_idle e in
  Alcotest.(check int) "both waiters answered" 2 (List.length out);
  List.iter
    (fun (_, line) -> ignore (parse_ok line))
    out;
  Alcotest.(check int) "no further shed" 1
    (Service.Engine.counters e).deadline_shed;
  Sys.remove cache

(* The engine's default clock is the constant zero: deadlines are inert in
   Sim scripts unless a real clock is injected — determinism by default. *)
let test_engine_default_clock_inert () =
  let cache = temp_cache () in
  let e = Service.Engine.create ~settings:fast ~cache () in
  let c = Service.Engine.connect e in
  Service.Engine.submit e c "TUNE cin=4 size=8 cout=4 k=3 deadline-ms=0";
  let out = Service.Engine.run_until_idle e in
  (match out with
  | [ (_, line) ] -> ignore (parse_ok line)
  | _ -> Alcotest.fail "expected one response");
  Alcotest.(check int) "nothing shed under the constant clock" 0
    (Service.Engine.counters e).deadline_shed;
  Sys.remove cache

(* ------------------------------------------------------------------ *)
(* Client: scripted-server behaviours. *)

let with_script_server script k =
  let dir = temp_dir "net-script" in
  let socket = Filename.concat dir "s.sock" in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 8;
  let srv = Domain.spawn (fun () -> script listener) in
  let result = k socket in
  Domain.join srv;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  result

let accept_read_line listener =
  let fd, _ = Unix.accept listener in
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get byte 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
  in
  let line = go () in
  (fd, line)

let test_client_honors_busy () =
  let slept = Atomic.make 0.0 in
  let result, trace =
    with_script_server
      (fun listener ->
        (* First attempt: BUSY with a 1s hint.  Second: served. *)
        let fd, _ = accept_read_line listener in
        send_raw fd "BUSY retry-after=1\n";
        Unix.close fd;
        let fd, _ = accept_read_line listener in
        send_raw fd "PONG\n";
        Unix.close fd)
      (fun socket ->
        Service.Client.ask_raw
          ~settings:{ Service.Client.default_settings with max_attempts = 3 }
          ~sleep_ms:(fun ms -> Atomic.set slept (Atomic.get slept +. ms))
          ~socket "PING")
  in
  (match result with
  | Ok Service.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected PONG after the BUSY retry");
  Alcotest.(check int) "two attempts" 2 (List.length trace);
  Alcotest.(check bool) "waited at least the retry-after hint" true
    (Atomic.get slept >= 1000.0)

let test_client_propagates_deadline () =
  let captured = Atomic.make "" in
  let result, _ =
    with_script_server
      (fun listener ->
        let fd, line = accept_read_line listener in
        Atomic.set captured line;
        (* A determinate typed error: final, no retry. *)
        send_raw fd "ERR failed scripted\n";
        Unix.close fd)
      (fun socket ->
        let r = spec_of_line "TUNE cin=4 size=8 cout=4 k=3" in
        Service.Client.ask
          ~settings:
            { Service.Client.default_settings with deadline_ms = Some 800 }
          ~socket (Service.Protocol.Tune r))
  in
  (match result with
  | Ok (Service.Protocol.Error (Service.Protocol.Failed _)) -> ()
  | _ -> Alcotest.fail "expected the scripted ERR failed to be final");
  let line = Atomic.get captured in
  (match Service.Protocol.parse_request line with
  | Ok (Service.Protocol.Tune r) -> (
    match r.Service.Protocol.deadline_ms with
    | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "deadline-ms on the wire within budget (%d)" d)
        true
        (d > 0 && d <= 800)
    | None -> Alcotest.failf "no deadline-ms on the wire: %s" line)
  | _ -> Alcotest.failf "captured request does not parse: %s" line)

let test_client_total_deadline () =
  (* No daemon at all: the client must give up by the total deadline, not
     by exhausting a long attempt budget. *)
  let dir = temp_dir "net-nodaemon" in
  let socket = Filename.concat dir "missing.sock" in
  let result, trace =
    Service.Client.ask_raw
      ~settings:
        {
          Service.Client.default_settings with
          deadline_ms = Some 120;
          max_attempts = 10_000;
          backoff_base_ms = 20;
          backoff_cap_ms = 40;
        }
      ~socket "PING"
  in
  (match result with
  | Error Service.Client.Deadline_exceeded -> ()
  | Ok _ | Error (Service.Client.Attempts_exhausted _) ->
    Alcotest.fail "expected Deadline_exceeded against a dead socket");
  Alcotest.(check bool) "bounded attempts before the deadline" true
    (List.length trace < 100)

let find_seed pred =
  let rec go s =
    if s > 50_000 then Alcotest.fail "no seed found for the scripted fault"
    else if pred s then s
    else go (s + 1)
  in
  go 0

(* Reset on attempt 1, clean on attempt 2, against a real daemon: the
   retry is idempotent (same canonical key), and because disconnects still
   tune and cache, the second attempt answers from the cache the first
   attempt paid for. *)
let test_client_reset_then_cached () =
  let profile = Service.Net_faults.default in
  let seed =
    find_seed (fun s ->
        Service.Net_faults.fault_of profile ~seed:s ~conn:0
        = Some Service.Net_faults.Reset
        && Service.Net_faults.fault_of profile ~seed:s ~conn:1 = None)
  in
  let dir = temp_dir "net-reset" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d = start_daemon ~socket ~cache:(Filename.concat dir "c") () in
  wait_ready socket;
  let r = spec_of_line "TUNE cin=4 size=8 cout=4 k=3" in
  let result, trace =
    Service.Client.ask
      ~settings:
        { Service.Client.default_settings with seed; faults = profile }
      ~socket (Service.Protocol.Tune r)
  in
  (match result with
  | Ok (Service.Protocol.Result p) ->
    Alcotest.(check string) "second attempt hits the first attempt's cache"
      "cached"
      (Service.Protocol.source_to_string p.Service.Protocol.source)
  | _ -> Alcotest.fail "expected an OK answer after the reset");
  Alcotest.(check int) "exactly two attempts" 2 (List.length trace);
  (match trace with
  | first :: _ ->
    Alcotest.(check bool) "first attempt records the reset" true
      (first.Service.Client.fault = Some Service.Net_faults.Reset)
  | [] -> Alcotest.fail "empty trace");
  Atomic.set stop true;
  let engine = Domain.join d in
  Alcotest.(check int) "the torn attempt still tuned (once)" 1
    (Service.Engine.counters engine).tunes_run

(* Garbage on attempt 1: whatever the daemon answers to the corrupted line
   (ERR parse, or an answer under a foreign key), the client refuses it and
   converges on the real answer with the right content address. *)
let test_client_survives_garbage () =
  let profile = Service.Net_faults.default in
  let r = spec_of_line "TUNE cin=8 size=8 cout=4 k=1" in
  let wire = Service.Protocol.render_tune r in
  let canonical = Service.Protocol.canonical_of_tune r in
  (* Some corruptions are harmless (e.g. bytes spliced into an ignored
     position can leave an equivalent request); insist on a seed whose
     garbled bytes actually change or break the request, so attempt 1
     cannot be answered under the right key. *)
  let corruption_bites s =
    let sent = concat_sends (Service.Net_faults.plan profile ~seed:s ~conn:0 wire) in
    String.split_on_char '\n' sent
    |> List.for_all (fun l ->
           match Service.Protocol.parse_request l with
           | Ok (Service.Protocol.Tune g) ->
             Service.Protocol.canonical_of_tune g <> canonical
           | Ok _ | Error _ -> true)
  in
  let seed =
    find_seed (fun s ->
        Service.Net_faults.fault_of profile ~seed:s ~conn:0
        = Some Service.Net_faults.Garbage
        && Service.Net_faults.fault_of profile ~seed:s ~conn:1 = None
        && corruption_bites s)
  in
  let dir = temp_dir "net-garble" in
  let socket = Filename.concat dir "d.sock" in
  let stop, _, d = start_daemon ~socket ~cache:(Filename.concat dir "c") () in
  wait_ready socket;
  let expected_key =
    Service.Result_cache.key_of_canonical (Service.Protocol.canonical_of_tune r)
  in
  let result, trace =
    Service.Client.ask
      ~settings:
        { Service.Client.default_settings with seed; faults = profile }
      ~socket (Service.Protocol.Tune r)
  in
  (match result with
  | Ok (Service.Protocol.Result p) ->
    Alcotest.(check string) "answer carries this request's content address"
      expected_key p.Service.Protocol.key
  | _ -> Alcotest.fail "expected an OK answer after the garbled attempt");
  Alcotest.(check bool) "took more than one attempt" true (List.length trace >= 2);
  Atomic.set stop true;
  ignore (Domain.join d)

(* ------------------------------------------------------------------ *)
(* The live-socket chaos campaign. *)

let shape_pool =
  [
    "TUNE cin=4 size=8 cout=4 k=3";
    "TUNE cin=8 size=8 cout=4 k=1";
    "TUNE cin=4 size=10 cout=8 k=3 arch=1080ti";
    "TUNE cin=8 size=6 cout=8 k=3";
    "TUNE cin=4 size=12 cout=4 k=1 arch=titanx";
    "TUNE cin=16 size=8 cout=4 k=1";
    "TUNE cin=4 size=8 cout=8 k=5";
    "TUNE cin=8 size=10 cout=4 k=3 arch=gfx906";
  ]

let kill_shape = "TUNE cin=6 size=8 cout=6 k=3"

(* One full campaign at [rate] with [clients] concurrent faulty clients.
   Returns the transcript: every phase-1 and warm-phase attempt trace and
   final answer, in deterministic order — the string the replay check
   compares byte-for-byte across two independent runs of the same seed.

   Phases: (1) concurrent faulty clients tune disjoint shape sets;
   (2) a rider client starts on a fresh shape and the daemon is hard-killed
   under it (no drain, no flush); (3) the cache file is corrupted with a
   garbage append; (4) a restarted daemon salvages the cache and the rider
   client's retries ride through the outage; (5) a fault-free warm sweep
   re-asks every phase-1 shape and the hit/tune ledger must account for it
   exactly; (6) graceful stop, and an independent reload of the final cache
   must be intact. *)
let run_campaign ~seed ~rate ~clients () =
  let dir = temp_dir "net-campaign" in
  let socket = Filename.concat dir "tuned.sock" in
  let cache = Filename.concat dir "cache.durable" in
  let shapes = List.filteri (fun i _ -> i < 2 * clients) shape_pool in
  (* Gold answers from an in-process reference engine with identical
     settings: the campaign's correctness bar is bit-equality of key,
     config and measured cost against a wire-free run. *)
  let gold =
    let e =
      Service.Engine.create ~settings:fast
        ~cache:(Filename.concat dir "gold.cache") ()
    in
    let c = Service.Engine.connect e in
    List.map
      (fun line ->
        Service.Engine.submit e c line;
        match Service.Engine.run_until_idle e with
        | [ (_, resp) ] -> (line, parse_ok resp)
        | other ->
          Alcotest.failf "gold run emitted %d responses" (List.length other))
      (shapes @ [ kill_shape ])
  in
  let check_gold label line (p : Service.Protocol.result_payload) =
    let g = List.assoc line gold in
    Alcotest.(check string) (label ^ ": key matches gold") g.Service.Protocol.key
      p.Service.Protocol.key;
    Alcotest.(check string) (label ^ ": config matches gold")
      (Core.Config.to_string g.Service.Protocol.config)
      (Core.Config.to_string p.Service.Protocol.config);
    Alcotest.(check bool) (label ^ ": cost matches gold") true
      (g.Service.Protocol.runtime_us = p.Service.Protocol.runtime_us
      && g.Service.Protocol.gflops = p.Service.Protocol.gflops)
  in
  (* Phase 1: concurrent faulty clients on disjoint shapes. *)
  let stop1, hard1, d1 = start_daemon ~socket ~cache () in
  wait_ready socket;
  let domains =
    List.init clients (fun i ->
        let mine = List.filteri (fun j _ -> j / 2 = i) shapes in
        Domain.spawn (fun () ->
            List.mapi
              (fun j line ->
                let settings =
                  {
                    Service.Client.default_settings with
                    seed = (seed * 97) + i;
                    conn_base = (i * 1000) + (j * 100);
                    faults = Service.Net_faults.with_rate rate;
                    max_attempts = 12;
                  }
                in
                let result, trace =
                  Service.Client.ask ~settings ~socket
                    (Service.Protocol.Tune (spec_of_line line))
                in
                (i, j, line, result, trace))
              mine))
  in
  let phase1 = List.concat_map Domain.join domains in
  List.iter
    (fun (i, j, line, result, _) ->
      match result with
      | Ok (Service.Protocol.Result p) ->
        check_gold (Printf.sprintf "client %d ask %d" i j) line p
      | Ok other ->
        Alcotest.failf "client %d ask %d: non-OK final answer %s" i j
          (Service.Protocol.render_response other)
      | Error f ->
        Alcotest.failf "client %d ask %d failed: %s" i j
          (Service.Client.failure_to_string f))
    phase1;
  (* Phase 2: hard kill under a rider client on a fresh shape.  Its own
     outcome is timing-dependent (answered before, during or after the
     outage) so it stays out of the transcript; its invariant is below. *)
  let rider =
    Domain.spawn (fun () ->
        Service.Client.ask
          ~settings:
            {
              Service.Client.default_settings with
              conn_base = 999_000;
              max_attempts = 60;
              attempt_timeout_ms = 500;
              backoff_base_ms = 20;
              backoff_cap_ms = 100;
            }
          ~socket
          (Service.Protocol.Tune (spec_of_line kill_shape)))
  in
  Atomic.set hard1 true;
  ignore (Domain.join d1);
  ignore stop1;
  (* Phase 3: corrupt the cache with a garbage append — the restart must
     salvage, not crash and not lie. *)
  let oc = open_out_gen [ Open_append ] 0o644 cache in
  output_string oc "#### corruption injected by test_net ####\n";
  close_out oc;
  (* Phase 4: restart; the rider's retries ride through the outage. *)
  let stop2, _, d2 = start_daemon ~socket ~cache () in
  wait_ready socket;
  (match Domain.join rider with
  | Ok (Service.Protocol.Result p), _ -> check_gold "rider" kill_shape p
  | Ok other, _ ->
    Alcotest.failf "rider got a non-OK final answer: %s"
      (Service.Protocol.render_response other)
  | Error f, _ ->
    Alcotest.failf "rider failed across the restart: %s"
      (Service.Client.failure_to_string f));
  let stats () =
    match Service.Client.ask_raw ~settings:clean_client ~socket "STATS" with
    | Ok (Service.Protocol.Stats_reply kvs), _ -> kvs
    | _ -> Alcotest.fail "STATS failed"
  in
  let stat kvs key =
    match List.assoc_opt key kvs with
    | Some v -> int_of_string v
    | None -> Alcotest.failf "STATS lacks %s" key
  in
  let before = stats () in
  Alcotest.(check bool) "restart salvaged the corrupted cache" true
    (stat before "salvage_dropped" >= 1);
  (* Phase 5: fault-free warm sweep; the ledger must balance exactly. *)
  let warm =
    List.map
      (fun line ->
        let result, _ =
          Service.Client.ask ~settings:clean_client ~socket
            (Service.Protocol.Tune (spec_of_line line))
        in
        match result with
        | Ok (Service.Protocol.Result p) ->
          check_gold "warm" line p;
          Alcotest.(check string) ("warm " ^ line ^ " served from cache")
            "cached"
            (Service.Protocol.source_to_string p.Service.Protocol.source);
          Alcotest.(check int) ("warm " ^ line ^ " zero trials") 0
            p.Service.Protocol.trials;
          (line, p)
        | _ -> Alcotest.failf "warm ask failed for %s" line)
      shapes
  in
  let after = stats () in
  Alcotest.(check int) "warm sweep hits, counted exactly"
    (stat before "hits" + List.length shapes)
    (stat after "hits");
  Alcotest.(check int) "warm sweep tuned nothing" (stat before "tunes_run")
    (stat after "tunes_run");
  (* Phase 6: graceful stop; the final cache reloads intact with every
     shape present. *)
  Atomic.set stop2 true;
  let engine2 = Domain.join d2 in
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists socket);
  ignore engine2;
  let final =
    Service.Result_cache.load
      ~generation:(Service.Engine.generation_of_settings fast) cache
  in
  Alcotest.(check int) "final cache holds every shape"
    (List.length shapes + 1)
    (Service.Result_cache.entries final);
  Alcotest.(check int) "final cache reloads with zero losses" 0
    (Service.Result_cache.dropped final);
  List.iter
    (fun line ->
      let canonical =
        Service.Protocol.canonical_of_tune (spec_of_line line)
      in
      match Service.Result_cache.find final ~canonical with
      | Some _ -> ()
      | None -> Alcotest.failf "shape missing from the final cache: %s" line)
    (shapes @ [ kill_shape ]);
  (* The transcript: deterministic phases only. *)
  let buf = Buffer.create 4096 in
  List.iter
    (fun (i, j, line, result, trace) ->
      Buffer.add_string buf (Printf.sprintf "client %d ask %d %s\n" i j line);
      List.iter
        (fun a ->
          Buffer.add_string buf ("  " ^ Service.Client.attempt_to_string a);
          Buffer.add_char buf '\n')
        trace;
      Buffer.add_string buf
        ("  => "
        ^ (match result with
          | Ok resp -> Service.Protocol.render_response resp
          | Error f -> Service.Client.failure_to_string f)
        ^ "\n"))
    phase1;
  List.iter
    (fun (line, p) ->
      Buffer.add_string buf
        (Printf.sprintf "warm %s => %s\n" line
           (Service.Protocol.render_response (Service.Protocol.Result p))))
    warm;
  Buffer.contents buf

let test_chaos_campaign () =
  List.iter
    (fun seed ->
      let transcript =
        run_campaign ~seed ~rate:0.30 ~clients:(if deep then 4 else 3) ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "campaign %d produced a transcript" seed)
        true
        (String.length transcript > 0))
    campaign_seeds

(* Re-running a seed reproduces the same transcript byte-for-byte: the
   fault plans, the retry traces and every answer replay exactly. *)
let test_chaos_campaign_replays () =
  let clients = 3 in
  let t1 = run_campaign ~seed:0 ~rate:0.30 ~clients () in
  let t2 = run_campaign ~seed:0 ~rate:0.30 ~clients () in
  Alcotest.(check string) "transcript replays byte-for-byte" t1 t2

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "faults",
        [
          Alcotest.test_case "plans pure in (seed, conn)" `Quick test_faults_pure;
          Alcotest.test_case "delivery contract per kind" `Quick
            test_faults_delivery_contract;
          Alcotest.test_case "executor runs plans" `Quick test_faults_apply;
          QCheck_alcotest.to_alcotest qcheck_faults_exact_framing;
        ] );
      ( "outbuf",
        [
          Alcotest.test_case "bounded, refuses overflow" `Quick test_outbuf_bounds;
          Alcotest.test_case "partial writes continue, never interleave" `Quick
            test_outbuf_partial_write_continuation;
          Alcotest.test_case "peer vanished" `Quick test_outbuf_peer_vanished;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "oversized line: typed ERR parse + close" `Quick
            test_daemon_oversized_line;
          Alcotest.test_case "slow-loris meets the request deadline" `Quick
            test_daemon_slow_loris;
          Alcotest.test_case "connection ceiling sheds BUSY" `Quick
            test_daemon_connection_ceiling;
          Alcotest.test_case "binary garbage stays typed" `Quick
            test_daemon_binary_garbage;
          Alcotest.test_case "pipelined burst arrives whole" `Quick
            test_daemon_pipelined_burst;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "expired work shed with ERR deadline" `Quick
            test_engine_sheds_expired_work;
          Alcotest.test_case "default clock keeps Sim deterministic" `Quick
            test_engine_default_clock_inert;
        ] );
      ( "client",
        [
          Alcotest.test_case "BUSY retry-after honored" `Quick test_client_honors_busy;
          Alcotest.test_case "deadline-ms propagated on the wire" `Quick
            test_client_propagates_deadline;
          Alcotest.test_case "total deadline beats the attempt budget" `Quick
            test_client_total_deadline;
          Alcotest.test_case "reset retried onto the warm cache" `Quick
            test_client_reset_then_cached;
          Alcotest.test_case "garbage never yields a wrong-key answer" `Quick
            test_client_survives_garbage;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "chaos campaign: kill, salvage, ledger" `Quick
            test_chaos_campaign;
          Alcotest.test_case "transcript replays byte-for-byte" `Quick
            test_chaos_campaign_replays;
        ] );
    ]
