(* Tests for the red-blue pebble game simulator.  The key invariants:

   - with unlimited fast memory, I/O degenerates to cold loads of every used
     input plus one store per output (compulsory traffic);
   - shrinking S never reduces I/O (inclusion-style monotonicity holds for
     this simulator because smaller caches only force extra evictions);
   - the blocked (paper-dataflow) schedule beats the by-step schedule;
   - every run performs at least the compulsory traffic. *)

module G = Dag.Graph
module P = Pebble.Pebble_game

let spec =
  { Dag.Conv_dag.w_in = 6; h_in = 6; c_in = 2; c_out = 2; w_ker = 3; h_ker = 3; stride = 1 }

let dag = Dag.Conv_dag.build spec

let compulsory_loads =
  (* Every image input feeds some window for this spec; every kernel weight is
     used; both must be loaded at least once. *)
  Array.length dag.input_ids + Array.length dag.kernel_ids

let n_outputs = Array.length dag.output_ids

let run ?(policy = P.Lru) ~s schedule = P.run dag.graph ~schedule ~s ~policy

let test_unlimited_memory_is_compulsory () =
  let big = G.num_vertices dag.graph + 1 in
  let stats = run ~s:big (Dag.Conv_dag.schedule_output_stationary dag) in
  Alcotest.(check int) "loads = cold misses" compulsory_loads stats.loads;
  Alcotest.(check int) "stores = outputs" n_outputs stats.stores;
  Alcotest.(check int) "computes = all vertices"
    (G.num_vertices dag.graph - G.num_inputs dag.graph)
    stats.computes

let test_compulsory_lower_bound () =
  List.iter
    (fun s ->
      let stats = run ~s (Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:1) in
      Alcotest.(check bool) "loads >= compulsory" true (stats.loads >= compulsory_loads);
      Alcotest.(check bool) "stores >= outputs" true (stats.stores >= n_outputs))
    [ P.min_red dag.graph; 8; 16; 64; 256 ]

let test_monotone_in_s () =
  let io_at s = P.total_io (run ~s (Dag.Conv_dag.schedule_output_stationary dag)) in
  let prev = ref max_int in
  List.iter
    (fun s ->
      let q = io_at s in
      Alcotest.(check bool) (Printf.sprintf "S=%d does not increase I/O" s) true (q <= !prev);
      prev := q)
    [ 4; 8; 16; 32; 64; 128; 512 ]

let test_blocked_beats_by_step () =
  let s = 64 in
  let blocked = P.total_io (run ~s (Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:2)) in
  let by_step = P.total_io (run ~s (Dag.Conv_dag.schedule_by_step dag)) in
  Alcotest.(check bool)
    (Printf.sprintf "blocked (%d) < by-step (%d)" blocked by_step)
    true (blocked < by_step)

let test_belady_not_worse_on_loads () =
  (* Belady is the offline-optimal eviction for loads; it should not lose to
     LRU on any of these cache sizes for the same schedule. *)
  List.iter
    (fun s ->
      let schedule = Dag.Conv_dag.schedule_output_stationary dag in
      let lru = run ~policy:P.Lru ~s schedule in
      let belady = run ~policy:P.Belady ~s schedule in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d belady loads (%d) <= lru loads (%d)" s belady.loads lru.loads)
        true
        (belady.loads <= lru.loads))
    [ 8; 16; 32; 64 ]

let test_rejects_bad_schedule () =
  let schedule = Dag.Conv_dag.schedule_output_stationary dag in
  let reversed = Array.of_list (List.rev (Array.to_list schedule)) in
  Alcotest.check_raises "non-topological schedule"
    (Invalid_argument "Pebble_game.run: schedule is not a topological order") (fun () ->
      ignore (run ~s:64 reversed))

let test_rejects_tiny_memory () =
  Alcotest.check_raises "S too small"
    (Invalid_argument "Pebble_game.run: fast memory too small") (fun () ->
      ignore (run ~s:2 (Dag.Conv_dag.schedule_output_stationary dag)))

let test_peak_red_bounded () =
  List.iter
    (fun s ->
      let stats = run ~s (Dag.Conv_dag.schedule_output_stationary dag) in
      Alcotest.(check bool) "peak <= S" true (stats.peak_red <= s))
    [ 4; 16; 64 ]

let test_winograd_dag_game () =
  let wspec = { Dag.Winograd_dag.tiles_w = 2; tiles_h = 2; c_in = 2; c_out = 2; e = 2; r = 3 } in
  let wdag = Dag.Winograd_dag.build wspec in
  let compulsory = Array.length wdag.input_ids + Array.length wdag.kernel_ids in
  let outputs = Array.length wdag.output_ids in
  let big = G.num_vertices wdag.graph + 1 in
  let stats = P.run wdag.graph ~schedule:(Dag.Winograd_dag.schedule_natural wdag) ~s:big ~policy:P.Lru in
  Alcotest.(check int) "winograd cold loads" compulsory stats.loads;
  Alcotest.(check int) "winograd stores" outputs stats.stores;
  (* Natural (tile-by-tile) schedule beats the by-step schedule at small S. *)
  let s = 64 in
  let natural =
    P.total_io (P.run wdag.graph ~schedule:(Dag.Winograd_dag.schedule_natural wdag) ~s ~policy:P.Lru)
  in
  let by_step =
    P.total_io (P.run wdag.graph ~schedule:(Dag.Winograd_dag.schedule_by_step wdag) ~s ~policy:P.Lru)
  in
  Alcotest.(check bool)
    (Printf.sprintf "natural (%d) < by-step (%d)" natural by_step)
    true (natural < by_step)

let test_fifo_policy () =
  List.iter
    (fun s ->
      let schedule = Dag.Conv_dag.schedule_output_stationary dag in
      let fifo = run ~policy:P.Fifo ~s schedule in
      Alcotest.(check bool) "fifo >= compulsory" true
        (fifo.loads >= compulsory_loads && fifo.stores >= n_outputs);
      (* Belady is offline-optimal on loads, so FIFO can never beat it. *)
      let belady = run ~policy:P.Belady ~s schedule in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d fifo %d >= belady %d" s fifo.loads belady.loads)
        true
        (fifo.loads >= belady.loads))
    [ 8; 32; 128 ]

let test_detailed_consistent () =
  List.iter
    (fun s ->
      let schedule = Dag.Conv_dag.schedule_by_step dag in
      let d = P.run_detailed dag.graph ~schedule ~s ~policy:P.Lru in
      let plain = P.run dag.graph ~schedule ~s ~policy:P.Lru in
      Alcotest.(check int) "totals match run" (P.total_io plain) (P.total_io d.totals);
      Alcotest.(check int) "loads partition"
        d.totals.loads
        (Array.fold_left ( + ) 0 d.loads_by_step);
      Alcotest.(check int) "stores partition"
        d.totals.stores
        (Array.fold_left ( + ) 0 d.stores_by_step))
    [ 8; 64; 256 ]

let test_detailed_step2_traffic_killed_by_dataflow () =
  (* The paper's Section 5.1 argument, executed: under the by-step schedule
     the summation step reloads spilled products (phi_2's traffic); the
     blocked dataflow keeps partials resident and erases it. *)
  (* At tiny S even step 1 thrashes; from S ~ 2 summation-tree widths up, the
     spilled-partials traffic is the dominant term, as the theory predicts. *)
  let s = 128 in
  let by_step =
    P.run_detailed dag.graph ~schedule:(Dag.Conv_dag.schedule_by_step dag) ~s ~policy:P.Lru
  in
  let blocked =
    P.run_detailed dag.graph
      ~schedule:(Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1)
      ~s ~policy:P.Lru
  in
  Alcotest.(check bool)
    (Printf.sprintf "by-step step-2 loads %d dominate" by_step.loads_by_step.(2))
    true
    (by_step.loads_by_step.(2) > by_step.loads_by_step.(1));
  Alcotest.(check bool)
    (Printf.sprintf "blocked step-2 loads %d vanish" blocked.loads_by_step.(2))
    true
    (blocked.loads_by_step.(2) * 20 < by_step.loads_by_step.(2))

let test_recompute_semantics () =
  (* A duplicate-free schedule behaves identically under both entry points. *)
  let schedule = Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:1 in
  let plain = P.run dag.graph ~schedule ~s:32 ~policy:P.Lru in
  let rec_ = P.run_recompute dag.graph ~schedule ~s:32 ~policy:P.Lru in
  Alcotest.(check int) "same loads" plain.loads rec_.loads;
  Alcotest.(check int) "same stores" plain.stores rec_.stores;
  Alcotest.(check int) "same computes" plain.computes rec_.computes;
  (* Incomplete or premature schedules are rejected. *)
  let missing = Array.sub schedule 0 (Array.length schedule - 1) in
  Alcotest.check_raises "incomplete schedule"
    (Invalid_argument "Pebble_game.run: invalid recomputing schedule") (fun () ->
      ignore (P.run_recompute dag.graph ~schedule:missing ~s:32 ~policy:P.Lru))

let test_recompute_cuts_winograd_io () =
  (* The paper's Section 3.1/8 point, executed: re-deriving kernel transforms
     per tile (instead of spilling them) cuts I/O — and Theorem 4.20 survives
     recomputation.  Belady eviction is used because LRU drowns in the
     transform trees' transient vertices (itself a finding worth keeping). *)
  let wspec = { Dag.Winograd_dag.tiles_w = 2; tiles_h = 2; c_in = 2; c_out = 16; e = 2; r = 3 } in
  let wdag = Dag.Winograd_dag.build wspec in
  let w_in, h_in = Dag.Winograd_dag.in_size wspec in
  let conv_spec =
    Conv.Conv_spec.make ~c_in:2 ~h_in ~w_in ~c_out:16 ~k_h:3 ~k_w:3 ()
  in
  List.iter
    (fun s ->
      let natural =
        P.run wdag.graph ~schedule:(Dag.Winograd_dag.schedule_natural wdag) ~s
          ~policy:P.Belady
      in
      let rec_ =
        P.run_recompute wdag.graph
          ~schedule:(Dag.Winograd_dag.schedule_recompute_transforms wdag)
          ~s ~policy:P.Belady
      in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d recompute %d < natural %d" s (P.total_io rec_)
           (P.total_io natural))
        true
        (P.total_io rec_ < P.total_io natural);
      Alcotest.(check bool) "arithmetic traded" true (rec_.computes > natural.computes);
      let bound = Core.Winograd_bound.q_lower ~e:2 conv_spec ~s:(float_of_int s) in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d bound %.0f holds under recomputation (%d)" s bound
           (P.total_io rec_))
        true
        (float_of_int (P.total_io rec_) >= bound))
    [ 96; 192 ]

let qcheck_io_sane =
  QCheck.Test.make ~name:"I/O bounded below by compulsory traffic" ~count:15
    QCheck.(pair (int_range 6 128) bool)
    (fun (s, use_belady) ->
      let s = max s (P.min_red dag.graph) in
      let policy = if use_belady then P.Belady else P.Lru in
      let stats =
        P.run dag.graph
          ~schedule:(Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:1)
          ~s ~policy
      in
      stats.loads >= compulsory_loads && stats.stores >= n_outputs)

(* --- pure step/trace API: one test per legality condition --- *)

(* c = a + b, then d = c (copy step): exercises input, interior and output
   vertices with 1- and 2-ary predecessors. *)
let tiny () =
  let g = G.create () in
  let a = G.add_input g in
  let b = G.add_input g in
  let c = G.add_compute g ~step:1 ~preds:[ a; b ] in
  let d = G.add_compute g ~step:2 ~preds:[ c ] in
  (g, a, b, c, d)

let expect_err name res =
  match res with
  | Ok () -> Alcotest.failf "%s: expected rejection, move was accepted" name
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error names the vertex (%s)" name msg)
      true
      (String.length msg > 0)

let test_step_start () =
  let g, a, b, c, d = tiny () in
  let st = P.start g in
  Alcotest.(check bool) "inputs blue" true (P.in_blue st a && P.in_blue st b);
  Alcotest.(check bool) "interior not blue" false (P.in_blue st c || P.in_blue st d);
  Alcotest.(check int) "nothing red" 0 st.P.red_count;
  Alcotest.(check int) "no I/O yet" 0 (P.state_io st);
  Alcotest.(check bool) "not complete" false (P.complete g st);
  Alcotest.(check (list int)) "blue vertices" [ a; b ] (P.blue_vertices g st);
  Alcotest.(check (list int)) "red vertices" [] (P.red_vertices g st)

let test_step_load_rules () =
  let g, a, _b, c, _d = tiny () in
  let st = P.start g in
  expect_err "load without blue" (P.check_move g ~s:3 st (P.Load c));
  let st = P.apply_exn g ~s:3 st (P.Load a) in
  Alcotest.(check int) "load counted" 1 st.P.loads;
  expect_err "double load" (P.check_move g ~s:3 st (P.Load a));
  (* Fill memory (s = 2): the second input takes the last slot, then any
     further placement must be rejected. *)
  let g2, a2, b2, _, _ = (fun (g, a, b, c, d) -> (g, a, b, c, d)) (tiny ()) in
  let st2 = P.apply_exn g2 ~s:2 (P.start g2) (P.Load a2) in
  let st2 = P.apply_exn g2 ~s:2 st2 (P.Load b2) in
  expect_err "load into full memory" (P.check_move g2 ~s:2 st2 (P.Load a2));
  expect_err "out-of-range vertex" (P.check_move g2 ~s:2 st2 (P.Load 99));
  expect_err "s < 1" (P.check_move g2 ~s:0 (P.start g2) (P.Load a2))

let test_step_compute_rules () =
  let g, a, b, c, d = tiny () in
  let st = P.start g in
  expect_err "compute an input" (P.check_move g ~s:4 st (P.Compute a));
  expect_err "compute without preds" (P.check_move g ~s:4 st (P.Compute c));
  let st = P.apply_exn g ~s:4 st (P.Load a) in
  expect_err "compute with one pred missing" (P.check_move g ~s:4 st (P.Compute c));
  let st = P.apply_exn g ~s:4 st (P.Load b) in
  let st = P.apply_exn g ~s:4 st (P.Compute c) in
  Alcotest.(check int) "compute counted, not I/O" 2 (P.state_io st);
  Alcotest.(check int) "computes" 1 st.P.computes;
  expect_err "recompute while red" (P.check_move g ~s:4 st (P.Compute c));
  (* No sliding: with memory full, computing d needs a slot even though its
     only predecessor c is red. *)
  expect_err "compute into full memory" (P.check_move g ~s:3 st (P.Compute d));
  let st = P.apply_exn g ~s:4 st (P.Compute d) in
  Alcotest.(check bool) "not complete until stored" false (P.complete g st);
  let st = P.apply_exn g ~s:4 st (P.Store d) in
  Alcotest.(check bool) "complete once output blue" true (P.complete g st)

let test_step_store_free_rules () =
  let g, a, b, c, _d = tiny () in
  let st = P.start g in
  expect_err "store without red" (P.check_move g ~s:3 st (P.Store c));
  expect_err "free without red" (P.check_move g ~s:3 st (P.Free c));
  let st = P.apply_exn g ~s:3 st (P.Load a) in
  expect_err "re-store an input (already blue)" (P.check_move g ~s:3 st (P.Store a));
  let st = P.apply_exn g ~s:3 st (P.Load b) in
  let st = P.apply_exn g ~s:3 st (P.Compute c) in
  let st = P.apply_exn g ~s:3 st (P.Store c) in
  Alcotest.(check int) "store counted" 1 st.P.stores;
  expect_err "double store" (P.check_move g ~s:3 st (P.Store c));
  let st = P.apply_exn g ~s:3 st (P.Free c) in
  Alcotest.(check bool) "freed vertex not red" false (P.in_red st c);
  Alcotest.(check bool) "blue copy survives the free" true (P.in_blue st c);
  (* Recomputation after an evict-without-store round trip is legal. *)
  let st = P.apply_exn g ~s:3 st (P.Compute c) in
  Alcotest.(check int) "recompute counted" 2 st.P.computes

let test_step_legal_moves_consistent () =
  (* legal_moves must be exactly the moves check_move accepts, in every state
     along a full play. *)
  let g, a, b, c, d = tiny () in
  let play = [ P.Load a; P.Load b; P.Compute c; P.Free a; P.Compute d; P.Store d ] in
  let all_moves =
    List.concat_map
      (fun v -> [ P.Load v; P.Store v; P.Compute v; P.Free v ])
      [ a; b; c; d ]
  in
  let st = ref (P.start g) in
  List.iter
    (fun mv ->
      let legal = P.legal_moves g ~s:3 !st in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s in legal_moves iff check_move accepts" (P.move_to_string m))
            (P.check_move g ~s:3 !st m = Ok ())
            (List.mem m legal))
        all_moves;
      st := P.apply_exn g ~s:3 !st mv)
    play

let test_step_trace () =
  let g, a, b, c, d = tiny () in
  (match P.trace g ~s:3 [ P.Load a; P.Load b; P.Compute c; P.Free a; P.Compute d; P.Store d ] with
  | Error msg -> Alcotest.fail ("legal trace rejected: " ^ msg)
  | Ok st ->
    Alcotest.(check int) "loads" 2 st.P.loads;
    Alcotest.(check int) "stores" 1 st.P.stores;
    Alcotest.(check bool) "complete" true (P.complete g st));
  (* The first illegal move aborts with its own error; later moves are never
     evaluated (the trailing out-of-range Free would raise a different one). *)
  match P.trace g ~s:3 [ P.Load a; P.Compute c; P.Free 99 ] with
  | Ok _ -> Alcotest.fail "illegal trace accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "aborts at the compute (%s)" msg)
      true
      (String.length msg > 0 && String.sub msg 0 7 = "compute")

let test_step_agrees_with_replay () =
  (* Playing the replay simulator's "unlimited memory" strategy through the
     step API reproduces its exact counters: compulsory loads and stores. *)
  let g, a, b, c, d = tiny () in
  let play = [ P.Load a; P.Load b; P.Compute c; P.Compute d; P.Store d ] in
  let st =
    match P.trace g ~s:10 play with Ok st -> st | Error m -> Alcotest.fail m
  in
  let stats = P.run g ~schedule:[| c; d |] ~s:10 ~policy:P.Lru in
  Alcotest.(check int) "loads agree" stats.P.loads st.P.loads;
  Alcotest.(check int) "stores agree" stats.P.stores st.P.stores;
  Alcotest.(check int) "computes agree" stats.P.computes st.P.computes

let () =
  Alcotest.run "pebble"
    [
      ( "steps",
        [
          Alcotest.test_case "start position" `Quick test_step_start;
          Alcotest.test_case "load legality" `Quick test_step_load_rules;
          Alcotest.test_case "compute legality" `Quick test_step_compute_rules;
          Alcotest.test_case "store/free legality" `Quick test_step_store_free_rules;
          Alcotest.test_case "legal_moves = check_move" `Quick
            test_step_legal_moves_consistent;
          Alcotest.test_case "trace replay and abort" `Quick test_step_trace;
          Alcotest.test_case "step API agrees with replay simulator" `Quick
            test_step_agrees_with_replay;
        ] );
      ( "game",
        [
          Alcotest.test_case "unlimited memory = compulsory traffic" `Quick
            test_unlimited_memory_is_compulsory;
          Alcotest.test_case "compulsory lower bound" `Quick test_compulsory_lower_bound;
          Alcotest.test_case "monotone in S" `Quick test_monotone_in_s;
          Alcotest.test_case "blocked beats by-step" `Quick test_blocked_beats_by_step;
          Alcotest.test_case "belady loads <= lru loads" `Quick test_belady_not_worse_on_loads;
          Alcotest.test_case "rejects bad schedule" `Quick test_rejects_bad_schedule;
          Alcotest.test_case "rejects tiny memory" `Quick test_rejects_tiny_memory;
          Alcotest.test_case "peak red bounded" `Quick test_peak_red_bounded;
          Alcotest.test_case "winograd DAG game" `Quick test_winograd_dag_game;
          Alcotest.test_case "fifo policy" `Quick test_fifo_policy;
          Alcotest.test_case "detailed attribution consistent" `Quick test_detailed_consistent;
          Alcotest.test_case "dataflow kills step-2 traffic" `Quick
            test_detailed_step2_traffic_killed_by_dataflow;
          Alcotest.test_case "recompute semantics" `Quick test_recompute_semantics;
          Alcotest.test_case "recomputation cuts Winograd I/O (bound holds)" `Quick
            test_recompute_cuts_winograd_io;
          QCheck_alcotest.to_alcotest qcheck_io_sane;
        ] );
    ]
