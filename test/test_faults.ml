(* Fault-tolerance smoke suite — backs the [@fault-smoke] dune alias.

   End-to-end checks that the tuner survives injected measurement faults,
   reports accurate failure/retry statistics, keeps the PR 1 bit-identical
   parallel == sequential contract under faults, and resumes a killed
   journal-backed run to the uninterrupted run's exact result.  Budgeted to
   stay well under ten seconds at the fixed seeds. *)

let arch = Gpu_sim.Arch.v100
let spec = Conv.Conv_spec.make ~c_in:16 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 ()

(* Harsher than [Faults.default]: most of the shared-memory budget is
   declared over-capacity (the small test layer's working sets top out near
   36% of it), so some pruned-domain configurations fail persistently and
   the failure path (penalized dataset entries, explorer avoidance, partial
   batches) actually runs. *)
let harsh = { Gpu_sim.Faults.default with launch_shmem_frac = 0.25 }

let space () = Core.Search_space.make arch spec Core.Config.Direct_dataflow

let tune ?faults ?journal ~domains () =
  Core.Tuner.tune ~seed:11 ~max_measurements:60 ~domains ?faults ?journal ~space:(space ()) ()

let same_result name (a : Core.Tuner.result) (b : Core.Tuner.result) =
  Alcotest.(check bool) (name ^ ": best config") true (a.best_config = b.best_config);
  Alcotest.(check (float 0.0)) (name ^ ": best runtime") a.best_runtime_us b.best_runtime_us;
  Alcotest.(check int) (name ^ ": measurements") a.measurements b.measurements;
  Alcotest.(check bool) (name ^ ": history") true (a.history = b.history);
  Alcotest.(check int) (name ^ ": converged_at") a.converged_at b.converged_at

let test_tuner_completes_under_faults () =
  let r = tune ~faults:harsh ~domains:1 () in
  let f = r.faults in
  Alcotest.(check bool) "found a config" true (r.best_runtime_us > 0.0);
  Alcotest.(check bool) "some configurations failed" true (f.failed > 0);
  Alcotest.(check int) "failures are all launch failures here" f.failed f.launch_failures;
  Alcotest.(check int) "one backoff per transient" f.retries (f.timeouts + f.nan_readings);
  Alcotest.(check bool) "failures count against the trial budget" true
    (r.measurements + f.failed <= 60);
  Alcotest.(check bool) "attempts cover every trial" true
    (f.attempts >= r.measurements + f.failed);
  Alcotest.(check int) "nothing replayed without a journal" 0 f.replayed

let test_zero_profile_is_plain_run () =
  let plain = tune ~domains:1 () in
  let zero = tune ~faults:Gpu_sim.Faults.none ~domains:1 () in
  same_result "zero profile" plain zero;
  let f = zero.faults in
  Alcotest.(check int) "no failures" 0 f.failed;
  Alcotest.(check int) "no retries" 0 f.retries;
  Alcotest.(check int) "no timeouts" 0 f.timeouts;
  Alcotest.(check int) "no nan readings" 0 f.nan_readings;
  Alcotest.(check (float 0.0)) "no backoff" 0.0 f.backoff_us

let test_parallel_identical_under_faults () =
  let baseline = tune ~faults:harsh ~domains:1 () in
  List.iter
    (fun domains ->
      let r = tune ~faults:harsh ~domains () in
      same_result (Printf.sprintf "domains=%d" domains) baseline r;
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d: fault stats" domains)
        true
        (r.faults = baseline.faults))
    [ 2; 4 ]

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let kill_and_resume ~domains () =
  let uninterrupted = tune ~faults:harsh ~domains () in
  let journal = Filename.temp_file "tune" ".journal" in
  Sys.remove journal;
  (* Journalling itself must not perturb the search. *)
  let journalled = tune ~faults:harsh ~journal ~domains () in
  same_result "journal-backed run" uninterrupted journalled;
  (* Simulate a kill one third of the way in: truncate the journal to a
     record prefix and rerun with identical parameters.  Line 0 is the
     durable header; records follow, one per trial. *)
  let lines = read_lines journal in
  let total = List.length lines - 1 in
  Alcotest.(check bool) "journal recorded every trial" true
    (total = journalled.measurements + journalled.faults.failed);
  let keep = max 1 (total / 3) in
  write_lines journal (List.filteri (fun i _ -> i <= keep) lines);
  let resumed = tune ~faults:harsh ~journal ~domains () in
  same_result "resumed run" uninterrupted resumed;
  Alcotest.(check int) "replayed exactly the surviving journal" keep resumed.faults.replayed;
  Alcotest.(check bool) "replayed rounds restored the checkpointed model" true
    (resumed.faults.model_restores > 0);
  Alcotest.(check int) "clean journal: nothing dropped" 0 resumed.faults.journal_dropped;
  (* A complete journal replays everything and measures nothing live. *)
  let replay_all = tune ~faults:harsh ~journal ~domains () in
  same_result "full replay" uninterrupted replay_all;
  Alcotest.(check int) "full replay count" total replay_all.faults.replayed;
  Sys.remove journal;
  Sys.remove (Core.Model_checkpoint.path_for journal)

let test_kill_and_resume_sequential () = kill_and_resume ~domains:1 ()
let test_kill_and_resume_parallel () = kill_and_resume ~domains:4 ()

let () =
  Util.Pool.ensure_workers (Util.Pool.default ()) 3;
  Alcotest.run "faults"
    [
      ( "fault-smoke",
        [
          Alcotest.test_case "tuner completes under faults" `Quick
            test_tuner_completes_under_faults;
          Alcotest.test_case "zero profile is the plain run" `Quick
            test_zero_profile_is_plain_run;
          Alcotest.test_case "parallel identical under faults" `Quick
            test_parallel_identical_under_faults;
          Alcotest.test_case "kill and resume, sequential" `Quick
            test_kill_and_resume_sequential;
          Alcotest.test_case "kill and resume, parallel" `Quick
            test_kill_and_resume_parallel;
        ] );
    ]
