(* Tests for the convolution library.  The load-bearing checks:

   - the generated Winograd transforms satisfy the 1D minimal-filtering
     identity for every supported (e, r), cross-checked against the published
     F(2,3) matrices;
   - every convolution kernel (im2col, Winograd, both tiled dataflows) agrees
     with the naive direct reference on random problems, including strides,
     padding, batches and ragged tile edges;
   - the tiled dataflows' I/O tallies equal their analytic per-block sums. *)

module Conv_spec = Conv.Conv_spec
module Q = Conv.Rational
module WT = Conv.Winograd_transform

let rng () = Util.Rng.create 20210217

let spec_basic = Conv_spec.make ~c_in:3 ~h_in:8 ~w_in:8 ~c_out:4 ~k_h:3 ~k_w:3 ()

(* --- Conv_spec --- *)

let test_spec_out_size () =
  let s = Conv_spec.make ~c_in:3 ~h_in:227 ~w_in:227 ~c_out:96 ~k_h:11 ~k_w:11 ~stride:4 () in
  Alcotest.(check (pair int int)) "alexnet conv1" (55, 55) (Conv_spec.h_out s, Conv_spec.w_out s);
  let p = Conv_spec.make ~c_in:1 ~h_in:13 ~w_in:13 ~c_out:1 ~k_h:3 ~k_w:3 ~pad:1 () in
  Alcotest.(check int) "same padding" 13 (Conv_spec.h_out p)

let test_spec_counts () =
  let s = Conv_spec.make ~batch:2 ~c_in:3 ~h_in:6 ~w_in:6 ~c_out:4 ~k_h:3 ~k_w:3 () in
  Alcotest.(check int) "inputs" (2 * 3 * 6 * 6) (Conv_spec.input_elems s);
  Alcotest.(check int) "weights" (4 * 3 * 3 * 3) (Conv_spec.weight_elems s);
  Alcotest.(check int) "outputs" (2 * 4 * 4 * 4) (Conv_spec.output_elems s);
  Alcotest.(check (float 1e-9)) "flops" (2.0 *. 27.0 *. 128.0) (Conv_spec.flops s)

let test_spec_reuse () =
  let s = Conv_spec.make ~c_in:1 ~h_in:8 ~w_in:8 ~c_out:1 ~k_h:3 ~k_w:3 ~stride:2 () in
  Alcotest.(check (float 1e-9)) "R = 9/4" 2.25 (Conv_spec.reuse s)

let test_spec_invalid () =
  Alcotest.check_raises "empty output" (Invalid_argument "Conv_spec.make: empty output")
    (fun () -> ignore (Conv_spec.make ~c_in:1 ~h_in:2 ~w_in:2 ~c_out:1 ~k_h:3 ~k_w:3 ()))

(* --- Rational --- *)

let test_rational_normalisation () =
  let q = Q.make 4 (-6) in
  Alcotest.(check int) "num" (-2) (Q.num q);
  Alcotest.(check int) "den" 3 (Q.den q)

let test_rational_arith () =
  let half = Q.make 1 2 and third = Q.make 1 3 in
  Alcotest.(check bool) "1/2+1/3 = 5/6" true (Q.equal (Q.add half third) (Q.make 5 6));
  Alcotest.(check bool) "1/2-1/3 = 1/6" true (Q.equal (Q.sub half third) (Q.make 1 6));
  Alcotest.(check bool) "1/2*1/3 = 1/6" true (Q.equal (Q.mul half third) (Q.make 1 6));
  Alcotest.(check bool) "1/2 / 1/3 = 3/2" true (Q.equal (Q.div half third) (Q.make 3 2));
  Alcotest.(check (float 1e-12)) "to_float" 1.5 (Q.to_float (Q.make 3 2))

let test_rational_div_by_zero () =
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (Q.make 1 0));
  Alcotest.check_raises "zero divisor" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let qcheck_rational_field =
  QCheck.Test.make ~name:"rational add/mul commute and distribute" ~count:300
    QCheck.(
      triple (pair (int_range (-30) 30) (int_range 1 12))
        (pair (int_range (-30) 30) (int_range 1 12))
        (pair (int_range (-30) 30) (int_range 1 12)))
    (fun ((a, b), (c, d), (e, f)) ->
      let x = Q.make a b and y = Q.make c d and z = Q.make e f in
      Q.equal (Q.add x y) (Q.add y x)
      && Q.equal (Q.mul x y) (Q.mul y x)
      && Q.equal (Q.mul x (Q.add y z)) (Q.add (Q.mul x y) (Q.mul x z)))

(* --- Winograd transforms --- *)

let naive_corr1d ~d ~g ~e =
  Array.init e (fun i ->
      let acc = ref 0.0 in
      Array.iteri (fun k gk -> acc := !acc +. (d.(i + k) *. gk)) g;
      !acc)

let test_transform_identity_1d () =
  let r = rng () in
  List.iter
    (fun (e, kr) ->
      let tf = WT.make ~e ~r:kr in
      for _ = 1 to 20 do
        let d = Array.init tf.alpha (fun _ -> Util.Rng.float r 2.0 -. 1.0) in
        let g = Array.init kr (fun _ -> Util.Rng.float r 2.0 -. 1.0) in
        let fast = WT.corr1d tf ~d ~g in
        let slow = naive_corr1d ~d ~g ~e in
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-6)) (Printf.sprintf "F(%d,%d) y%d" e kr i) x fast.(i))
          slow
      done)
    [ (1, 1); (2, 2); (2, 3); (3, 2); (4, 3); (3, 4); (6, 3); (4, 5) ]

let test_transform_f23_spotcheck () =
  (* The published F(2,3) algorithm uses points {0, 1, -1}; whatever the
     scaling convention, the composite operator A^T diag(G g) B^T must equal
     the correlation matrix [[g0 g1 g2 0];[0 g0 g1 g2]]. *)
  let tf = WT.make ~e:2 ~r:3 in
  let g = [| 0.3; -0.7; 1.1 |] in
  List.iteri
    (fun col expected ->
      let d = Array.make 4 0.0 in
      d.(col) <- 1.0;
      let y = WT.corr1d tf ~d ~g in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "col %d y0" col) (fst expected) y.(0);
      Alcotest.(check (float 1e-9)) (Printf.sprintf "col %d y1" col) (snd expected) y.(1))
    [ (g.(0), 0.0); (g.(1), g.(0)); (g.(2), g.(1)); (0.0, g.(2)) ]

let test_transform_sizes () =
  let tf = WT.make ~e:4 ~r:3 in
  Alcotest.(check int) "alpha" 6 tf.alpha;
  Alcotest.(check int) "at" (4 * 6) (Array.length tf.at);
  Alcotest.(check int) "g" (6 * 3) (Array.length tf.g);
  Alcotest.(check int) "bt" (6 * 6) (Array.length tf.bt)

let test_transform_too_large () =
  Alcotest.check_raises "alpha > budget"
    (Invalid_argument "Winograd_transform.make: tile too large") (fun () ->
      ignore (WT.make ~e:9 ~r:3))

let qcheck_transform_2d =
  (* 2D identity: a random 3x3 kernel correlated over a random alpha x alpha
     patch through the transforms equals naive 2D correlation. *)
  QCheck.Test.make ~name:"2D Winograd tile equals naive correlation" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (e, seed) ->
      let r = 3 in
      let tf = WT.make ~e ~r in
      let alpha = tf.alpha in
      let rng = Util.Rng.create seed in
      let d = Array.init (alpha * alpha) (fun _ -> Util.Rng.float rng 2.0 -. 1.0) in
      let g = Array.init (r * r) (fun _ -> Util.Rng.float rng 2.0 -. 1.0) in
      let u = WT.transform_kernel tf g in
      let v = WT.transform_input tf d in
      let m = Array.map2 ( *. ) u v in
      let y = WT.transform_output tf m in
      let ok = ref true in
      for oy = 0 to e - 1 do
        for ox = 0 to e - 1 do
          let acc = ref 0.0 in
          for kh = 0 to r - 1 do
            for kw = 0 to r - 1 do
              acc := !acc +. (d.(((oy + kh) * alpha) + ox + kw) *. g.((kh * r) + kw))
            done
          done;
          if Float.abs (!acc -. y.((oy * e) + ox)) > 1e-5 then ok := false
        done
      done;
      !ok)

let test_transform_conditioning () =
  (* The interpolation points grow with alpha and so does the transform's
     magnitude — the mechanism behind the e-ablation's error growth.  Pin the
     monotone trend so a silent point-ordering regression is caught. *)
  let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m in
  let growth =
    List.map (fun e -> max_abs (WT.make ~e ~r:3).bt) [ 2; 4; 6 ]
  in
  (match growth with
  | [ g2; g4; g6 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "|Bt| grows: %.1f < %.1f < %.1f" g2 g4 g6)
      true
      (g2 < g4 && g4 < g6)
  | _ -> Alcotest.fail "unexpected");
  ()

(* --- kernel agreement --- *)

let agree ?(rtol = 1e-4) ?(atol = 1e-5) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (max diff %.3g)" name (Tensor.max_abs_diff expected actual))
    true
    (Tensor.allclose ~rtol ~atol expected actual)

let specs_for_agreement =
  [
    ("basic 3x3", spec_basic);
    ("stride 2", Conv_spec.make ~c_in:2 ~h_in:9 ~w_in:9 ~c_out:3 ~k_h:3 ~k_w:3 ~stride:2 ());
    ("padded", Conv_spec.make ~c_in:2 ~h_in:7 ~w_in:7 ~c_out:3 ~k_h:3 ~k_w:3 ~pad:1 ());
    ("batched", Conv_spec.make ~batch:3 ~c_in:2 ~h_in:6 ~w_in:6 ~c_out:2 ~k_h:3 ~k_w:3 ());
    ("1x1 kernel", Conv_spec.make ~c_in:4 ~h_in:5 ~w_in:5 ~c_out:3 ~k_h:1 ~k_w:1 ());
    ("rect kernel", Conv_spec.make ~c_in:2 ~h_in:8 ~w_in:9 ~c_out:2 ~k_h:2 ~k_w:3 ());
    ("5x5 stride 2 pad 2",
     Conv_spec.make ~c_in:2 ~h_in:11 ~w_in:11 ~c_out:2 ~k_h:5 ~k_w:5 ~stride:2 ~pad:2 ());
  ]

let test_im2col_agrees () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      agree name expected (Conv.Im2col.run spec ~input ~weights))
    specs_for_agreement

let test_im2col_small_blocks () =
  let input, weights = Conv.Direct.random_problem (rng ()) spec_basic in
  let expected = Conv.Direct.run spec_basic ~input ~weights in
  agree "tiny gemm blocks" expected (Conv.Im2col.run ~mb:2 ~nb:3 spec_basic ~input ~weights)

let test_winograd_agrees () =
  List.iter
    (fun (name, spec, e) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      agree name expected (Conv.Winograd.run ~e spec ~input ~weights))
    [
      ("F(2,3) exact tiles", spec_basic, 2);
      ("F(2,3) ragged", Conv_spec.make ~c_in:2 ~h_in:9 ~w_in:9 ~c_out:2 ~k_h:3 ~k_w:3 (), 2);
      ("F(4,3)", Conv_spec.make ~c_in:2 ~h_in:10 ~w_in:10 ~c_out:2 ~k_h:3 ~k_w:3 (), 4);
      ("F(3,2)", Conv_spec.make ~c_in:2 ~h_in:8 ~w_in:8 ~c_out:2 ~k_h:2 ~k_w:2 (), 3);
      ("padded", Conv_spec.make ~c_in:2 ~h_in:8 ~w_in:8 ~c_out:2 ~k_h:3 ~k_w:3 ~pad:1 (), 2);
      ("batched", Conv_spec.make ~batch:2 ~c_in:2 ~h_in:6 ~w_in:6 ~c_out:2 ~k_h:3 ~k_w:3 (), 2);
    ]

let test_winograd_rejects_stride () =
  let s = Conv_spec.make ~c_in:1 ~h_in:8 ~w_in:8 ~c_out:1 ~k_h:3 ~k_w:3 ~stride:2 () in
  Alcotest.(check bool) "not supported" false (Conv.Winograd.supported s);
  let input, weights = Conv.Direct.random_problem (rng ()) s in
  Alcotest.check_raises "raises"
    (Invalid_argument "Winograd.run: stride 1 and square kernel required") (fun () ->
      ignore (Conv.Winograd.run ~e:2 s ~input ~weights))

let test_winograd_fewer_multiplications () =
  let s = Conv_spec.make ~c_in:64 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 () in
  let wino = Conv.Winograd.multiplications ~e:4 s in
  let direct = Conv.Winograd.direct_multiplications s in
  Alcotest.(check bool)
    (Printf.sprintf "wino %.3g < direct %.3g" wino direct)
    true (wino < direct)

let tile x y z = { Conv.Tiled_direct.x; y; z }
let wtile x y z = { Conv.Tiled_winograd.x; y; z }

let test_tiled_direct_agrees () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      List.iter
        (fun t ->
          let r = Conv.Tiled_direct.run spec ~tile:t ~input ~weights in
          agree
            (Printf.sprintf "%s tile %dx%dx%d" name t.Conv.Tiled_direct.x t.y t.z)
            expected r.output)
        [ tile 1 1 1; tile 2 2 2; tile 3 2 1; tile 100 100 100 ])
    specs_for_agreement

let test_tiled_direct_alpha_sweep () =
  let input, weights = Conv.Direct.random_problem (rng ()) spec_basic in
  let expected = Conv.Direct.run spec_basic ~input ~weights in
  List.iter
    (fun alpha ->
      let r = Conv.Tiled_direct.run ~alpha spec_basic ~tile:(tile 2 2 2) ~input ~weights in
      agree (Printf.sprintf "alpha=%d" alpha) expected r.output)
    [ 1; 2; 3 ]

let test_tiled_direct_io_matches_io_only () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      List.iter
        (fun t ->
          let r = Conv.Tiled_direct.run spec ~tile:t ~input ~weights in
          let analytic = Conv.Tiled_direct.io_only spec ~tile:t in
          Alcotest.(check (float 1e-6)) (name ^ " loads") analytic.loads r.io.loads;
          Alcotest.(check (float 1e-6)) (name ^ " stores") analytic.stores r.io.stores)
        [ tile 2 2 2; tile 4 4 2 ])
    specs_for_agreement

let test_tiled_direct_io_decomposition () =
  (* Without padding or clamping, per-block traffic follows the closed form
     of Section 5.2: x'*y'*C_in + k^2*C_in*z loads and x*y*z stores. *)
  let spec = Conv_spec.make ~c_in:5 ~h_in:10 ~w_in:10 ~c_out:6 ~k_h:3 ~k_w:3 () in
  (* h_out = w_out = 8, divisible by tile 4; c_out divisible by 3. *)
  let t = tile 4 4 3 in
  let io = Conv.Tiled_direct.io_only spec ~tile:t in
  let blocks = float_of_int ((8 / 4) * (8 / 4) * (6 / 3)) in
  let x' = float_of_int (Conv.Tiled_direct.input_tile_w spec 4) in
  let y' = float_of_int (Conv.Tiled_direct.input_tile_h spec 4) in
  let expected_loads = blocks *. ((x' *. y' *. 5.0) +. (9.0 *. 5.0 *. 3.0)) in
  let expected_stores = blocks *. (4.0 *. 4.0 *. 3.0) in
  Alcotest.(check (float 1e-6)) "closed-form loads" expected_loads io.loads;
  Alcotest.(check (float 1e-6)) "closed-form stores" expected_stores io.stores

let test_tiled_direct_bigger_tiles_less_io () =
  let spec = Conv_spec.make ~c_in:8 ~h_in:20 ~w_in:20 ~c_out:8 ~k_h:3 ~k_w:3 () in
  let io_small = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:(tile 1 1 1)) in
  let io_big = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:(tile 6 6 4)) in
  Alcotest.(check bool)
    (Printf.sprintf "big tiles (%.0f) beat small (%.0f)" io_big io_small)
    true (io_big < io_small)

let test_tiled_direct_working_set () =
  let spec = spec_basic in
  let ws = Conv.Tiled_direct.working_set spec ~tile:(tile 2 3 4) ~alpha:1 in
  let expected = (2 * 3 * 4) + (4 * 5 * 1) + (9 * 1 * 4) in
  Alcotest.(check int) "working set" expected ws

let test_tiled_winograd_agrees () =
  List.iter
    (fun (name, spec, e, t) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r = Conv.Tiled_winograd.run ~e spec ~tile:t ~input ~weights in
      agree name expected r.output)
    [
      ("F(2,3) even", spec_basic, 2, wtile 2 2 2);
      ("F(2,3) block 4", spec_basic, 2, wtile 4 4 4);
      ( "F(2,3) ragged edge",
        Conv_spec.make ~c_in:2 ~h_in:9 ~w_in:9 ~c_out:3 ~k_h:3 ~k_w:3 (),
        2,
        wtile 4 4 2 );
      ( "F(4,3) padded",
        Conv_spec.make ~c_in:2 ~h_in:12 ~w_in:12 ~c_out:2 ~k_h:3 ~k_w:3 ~pad:1 (),
        4,
        wtile 4 4 2 );
      ( "batched",
        Conv_spec.make ~batch:2 ~c_in:2 ~h_in:8 ~w_in:8 ~c_out:2 ~k_h:3 ~k_w:3 (),
        2,
        wtile 2 2 1 );
    ]

let test_tiled_winograd_io_matches () =
  let spec = Conv_spec.make ~c_in:3 ~h_in:10 ~w_in:10 ~c_out:4 ~k_h:3 ~k_w:3 () in
  let input, weights = Conv.Direct.random_problem (rng ()) spec in
  let t = wtile 4 4 2 in
  let r = Conv.Tiled_winograd.run ~e:2 spec ~tile:t ~input ~weights in
  let analytic = Conv.Tiled_winograd.io_only ~e:2 spec ~tile:t in
  Alcotest.(check (float 1e-6)) "loads" analytic.loads r.io.loads;
  Alcotest.(check (float 1e-6)) "stores" analytic.stores r.io.stores

let test_tiled_winograd_rejects_bad_tile () =
  Alcotest.check_raises "tile not multiple of e"
    (Invalid_argument "Tiled_winograd: tile.x and tile.y must be multiples of e") (fun () ->
      ignore (Conv.Tiled_winograd.io_only ~e:2 spec_basic ~tile:(wtile 3 2 1)))

let test_parallel_exec_matches_sequential () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      List.iter
        (fun domains ->
          let t = tile 3 2 2 in
          let par = Conv.Parallel_exec.tiled_direct ~domains spec ~tile:t ~input ~weights in
          agree (Printf.sprintf "%s domains=%d" name domains) expected par.output;
          let seq = Conv.Tiled_direct.run spec ~tile:t ~input ~weights in
          Alcotest.(check (float 1e-6)) "same io"
            (Conv.Io_count.total seq.io) (Conv.Io_count.total par.io);
          Alcotest.(check int) "same block count" seq.blocks par.blocks)
        [ 1; 2; 4 ])
    specs_for_agreement

let test_parallel_winograd_matches () =
  let spec = Conv_spec.make ~batch:2 ~c_in:3 ~h_in:10 ~w_in:10 ~c_out:4 ~k_h:3 ~k_w:3 ~pad:1 () in
  let input, weights = Conv.Direct.random_problem (rng ()) spec in
  let expected = Conv.Direct.run spec ~input ~weights in
  List.iter
    (fun domains ->
      let par =
        Conv.Parallel_exec.tiled_winograd ~domains ~e:2 spec ~tile:(wtile 4 4 2) ~input ~weights
      in
      agree (Printf.sprintf "winograd domains=%d" domains) expected par.output)
    [ 1; 3 ]

let test_parallel_direct_matches () =
  let spec = Conv_spec.make ~c_in:3 ~h_in:9 ~w_in:9 ~c_out:5 ~k_h:3 ~k_w:3 ~stride:2 () in
  let input, weights = Conv.Direct.random_problem (rng ()) spec in
  let expected = Conv.Direct.run spec ~input ~weights in
  agree "parallel direct" expected (Conv.Parallel_exec.direct ~domains:4 spec ~input ~weights)

let test_parallel_exec_bit_identical () =
  (* Stronger than [agree]: blocks write disjoint output regions and each
     block's arithmetic is the same code, so the pooled executor must match
     the sequential one bit for bit — across real worker domains. *)
  Util.Pool.ensure_workers (Util.Pool.default ()) 3;
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let t = tile 3 2 2 in
      let seq = Conv.Tiled_direct.run spec ~tile:t ~input ~weights in
      List.iter
        (fun domains ->
          let par = Conv.Parallel_exec.tiled_direct ~domains spec ~tile:t ~input ~weights in
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "%s bit-identical at domains=%d" name domains)
            (Tensor.data seq.output) (Tensor.data par.output))
        [ 1; 2; 4; 8 ])
    specs_for_agreement

(* --- grouped convolution --- *)

(* Oracle: a grouped convolution equals an ungrouped one whose weight tensor
   is block-diagonal (zeros wherever a filter looks outside its group). *)
let ungrouped_equivalent (spec : Conv_spec.t) grouped_weights =
  let full = Conv_spec.make ~batch:spec.batch ~pad_h:spec.pad_h ~pad_w:spec.pad_w
      ~stride:spec.stride ~c_in:spec.c_in ~h_in:spec.h_in ~w_in:spec.w_in
      ~c_out:spec.c_out ~k_h:spec.k_h ~k_w:spec.k_w () in
  let cpg = Conv_spec.channels_per_group spec and fpg = Conv_spec.filters_per_group spec in
  let w = Tensor.create (Conv_spec.weight_shape full) in
  let src = Tensor.data grouped_weights and dst = Tensor.data w in
  let taps = spec.k_h * spec.k_w in
  for co = 0 to spec.c_out - 1 do
    let group = co / fpg in
    for dc = 0 to cpg - 1 do
      let ci = (group * cpg) + dc in
      Array.blit src (((co * cpg) + dc) * taps) dst (((co * spec.c_in) + ci) * taps) taps
    done
  done;
  (full, w)

let grouped_specs =
  [
    ("groups=2", Conv_spec.make ~c_in:4 ~h_in:8 ~w_in:8 ~c_out:6 ~k_h:3 ~k_w:3 ~groups:2 ());
    ("depthwise", Conv_spec.make ~c_in:8 ~h_in:7 ~w_in:7 ~c_out:8 ~k_h:3 ~k_w:3 ~pad:1 ~groups:8 ());
    ("strided grouped",
     Conv_spec.make ~c_in:6 ~h_in:9 ~w_in:9 ~c_out:6 ~k_h:3 ~k_w:3 ~stride:2 ~groups:3 ());
  ]

let test_grouped_direct_matches_block_diagonal () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let full_spec, full_weights = ungrouped_equivalent spec weights in
      let expected = Conv.Direct.run full_spec ~input ~weights:full_weights in
      agree name expected (Conv.Direct.run spec ~input ~weights))
    grouped_specs

let test_grouped_tiled_direct () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r = Conv.Tiled_direct.run spec ~tile:(tile 2 2 2) ~input ~weights in
      agree (name ^ " tiled") expected r.output;
      let analytic = Conv.Tiled_direct.io_only spec ~tile:(tile 2 2 2) in
      Alcotest.(check (float 1e-6)) (name ^ " io") (Conv.Io_count.total analytic)
        (Conv.Io_count.total r.io))
    grouped_specs

let test_grouped_im2col () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      agree (name ^ " im2col") expected (Conv.Im2col.run spec ~input ~weights))
    grouped_specs

let test_grouped_spec_properties () =
  let spec = Conv_spec.make ~c_in:8 ~h_in:7 ~w_in:7 ~c_out:8 ~k_h:3 ~k_w:3 ~groups:8 () in
  Alcotest.(check int) "weights shrink" (8 * 1 * 9) (Conv_spec.weight_elems spec);
  Alcotest.(check (float 1e-6)) "flops shrink" (2.0 *. 9.0 *. float_of_int (8 * 5 * 5))
    (Conv_spec.flops spec);
  Alcotest.(check bool) "winograd unsupported" false (Conv.Winograd.supported spec);
  Alcotest.check_raises "bad groups"
    (Invalid_argument "Conv_spec.make: groups must divide both channel counts") (fun () ->
      ignore (Conv_spec.make ~c_in:5 ~h_in:7 ~w_in:7 ~c_out:8 ~k_h:3 ~k_w:3 ~groups:2 ()))

let test_grouped_parallel () =
  let spec = List.assoc "depthwise" grouped_specs in
  let input, weights = Conv.Direct.random_problem (rng ()) spec in
  let expected = Conv.Direct.run spec ~input ~weights in
  let r = Conv.Parallel_exec.tiled_direct ~domains:3 spec ~tile:(tile 3 3 4) ~input ~weights in
  agree "parallel depthwise" expected r.output

let test_weight_stationary_agrees () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r = Conv.Dataflow_variants.weight_stationary spec ~z:2 ~channel_chunk:1 ~input ~weights in
      agree name expected r.output;
      Alcotest.(check bool) (name ^ " io positive") true (Conv.Io_count.total r.io > 0.0))
    specs_for_agreement

let test_input_stationary_agrees () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r =
        Conv.Dataflow_variants.input_stationary spec ~x:3 ~y:2 ~channel_chunk:1 ~input ~weights
      in
      agree name expected r.output)
    specs_for_agreement

let test_output_stationary_wins () =
  (* The paper's claim made concrete: at R > 1 with comparable on-chip
     budgets, the output-stationary dataflow moves less data than either
     alternative discipline. *)
  let spec = Conv_spec.make ~c_in:32 ~h_in:28 ~w_in:28 ~c_out:32 ~k_h:3 ~k_w:3 ~pad:1 () in
  let os =
    Conv.Io_count.total
      (Conv.Tiled_direct.io_only spec ~tile:{ Conv.Tiled_direct.x = 7; y = 7; z = 8 })
  in
  let ws = Conv.Io_count.total (Conv.Dataflow_variants.io_weight_stationary spec ~z:8 ~channel_chunk:2) in
  let is_ = Conv.Io_count.total (Conv.Dataflow_variants.io_input_stationary spec ~x:7 ~y:7 ~channel_chunk:2) in
  Alcotest.(check bool) (Printf.sprintf "os %.3g < ws %.3g" os ws) true (os < ws);
  Alcotest.(check bool) (Printf.sprintf "os %.3g < is %.3g" os is_) true (os < is_)

let test_direct_layout_agrees () =
  List.iter
    (fun (name, spec) ->
      let input, weights = Conv.Direct.random_problem (rng ()) spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      List.iter
        (fun layout ->
          let packed = Conv.Direct_layout.pack_input layout spec input in
          let actual = Conv.Direct_layout.run ~layout spec ~packed_input:packed ~weights in
          agree (Printf.sprintf "%s %s" name (Tensor.Layout.to_string layout)) expected actual)
        Tensor.Layout.all)
    specs_for_agreement

let test_direct_layout_pack_roundtrip () =
  let spec = spec_basic in
  let input, _ = Conv.Direct.random_problem (rng ()) spec in
  List.iter
    (fun layout ->
      let packed = Conv.Direct_layout.pack_input layout spec input in
      let back = Conv.Direct_layout.unpack_to_nchw layout spec packed in
      Alcotest.(check bool)
        (Tensor.Layout.to_string layout ^ " roundtrip")
        true
        (Tensor.max_abs_diff input back = 0.0))
    Tensor.Layout.all

let test_io_count_algebra () =
  let a = Conv.Io_count.make ~loads:10.0 ~stores:4.0 in
  let b = Conv.Io_count.make ~loads:1.0 ~stores:2.0 in
  let c = Conv.Io_count.add a b in
  Alcotest.(check (float 0.0)) "total" 17.0 (Conv.Io_count.total c);
  Alcotest.(check (float 0.0)) "scale" 34.0 Conv.Io_count.(total (scale 2.0 c));
  Alcotest.(check (float 0.0)) "bytes" 68.0 (Conv.Io_count.bytes c)

let test_im2col_io_exceeds_tiled () =
  (* The materialisation traffic should make im2col strictly worse than the
     paper's dataflow with a sensible tile on a standard layer. *)
  let spec = Conv_spec.make ~c_in:64 ~h_in:28 ~w_in:28 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 () in
  let im2col = Conv.Io_count.total (Conv.Im2col.io spec) in
  let tiled = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:(tile 7 7 8)) in
  Alcotest.(check bool)
    (Printf.sprintf "im2col %.3g > tiled %.3g" im2col tiled)
    true (im2col > tiled)

let qcheck_grouped_agreement =
  QCheck.Test.make ~name:"grouped tiled dataflow equals direct" ~count:20
    QCheck.(quad (int_range 1 3) (int_range 1 3) (int_range 1 2) (int_range 0 5000))
    (fun (gpow, cpg, fpg, seed) ->
      let groups = 1 lsl gpow in
      let c_in = groups * cpg and c_out = groups * fpg in
      let spec = Conv_spec.make ~c_in ~h_in:7 ~w_in:7 ~c_out ~k_h:3 ~k_w:3 ~groups () in
      let rng = Util.Rng.create seed in
      let input, weights = Conv.Direct.random_problem rng spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r = Conv.Tiled_direct.run spec ~tile:(tile 2 2 1) ~input ~weights in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-5 expected r.output)

let qcheck_io_only_matches_run =
  QCheck.Test.make ~name:"io_only always equals the executed tally" ~count:25
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (pair (int_range 1 4) (int_range 1 2))
        (pair (int_range 0 2) (int_range 6 9)))
    (fun (tx, ty, (tz, stride), (pad, size)) ->
      let spec = Conv_spec.make ~c_in:2 ~h_in:size ~w_in:size ~c_out:3 ~k_h:3 ~k_w:3 ~stride ~pad () in
      let rng = Util.Rng.create 7 in
      let input, weights = Conv.Direct.random_problem rng spec in
      let t = { Conv.Tiled_direct.x = tx; y = ty; z = tz } in
      let r = Conv.Tiled_direct.run spec ~tile:t ~input ~weights in
      let a = Conv.Tiled_direct.io_only spec ~tile:t in
      Float.abs (Conv.Io_count.total r.io -. Conv.Io_count.total a) < 1e-6)

let qcheck_tiled_direct_agreement =
  QCheck.Test.make ~name:"tiled direct equals naive on random problems" ~count:25
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (pair (int_range 1 4) (int_range 1 4))
        (int_range 0 10_000))
    (fun (tx, ty, (tz, c_in), seed) ->
      let spec = Conv_spec.make ~c_in ~h_in:7 ~w_in:7 ~c_out:3 ~k_h:3 ~k_w:3 () in
      let rng = Util.Rng.create seed in
      let input, weights = Conv.Direct.random_problem rng spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      let r = Conv.Tiled_direct.run spec ~tile:{ x = tx; y = ty; z = tz } ~input ~weights in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-5 expected r.output)

let () =
  Alcotest.run "conv"
    [
      ( "spec",
        [
          Alcotest.test_case "out size" `Quick test_spec_out_size;
          Alcotest.test_case "element counts" `Quick test_spec_counts;
          Alcotest.test_case "reuse factor" `Quick test_spec_reuse;
          Alcotest.test_case "invalid" `Quick test_spec_invalid;
        ] );
      ( "rational",
        [
          Alcotest.test_case "normalisation" `Quick test_rational_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
          Alcotest.test_case "division by zero" `Quick test_rational_div_by_zero;
          QCheck_alcotest.to_alcotest qcheck_rational_field;
        ] );
      ( "winograd_transform",
        [
          Alcotest.test_case "1D identity across (e,r)" `Quick test_transform_identity_1d;
          Alcotest.test_case "F(2,3) correlation matrix" `Quick test_transform_f23_spotcheck;
          Alcotest.test_case "matrix sizes" `Quick test_transform_sizes;
          Alcotest.test_case "rejects oversized tiles" `Quick test_transform_too_large;
          Alcotest.test_case "conditioning grows with alpha" `Quick test_transform_conditioning;
          QCheck_alcotest.to_alcotest qcheck_transform_2d;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "im2col agrees with direct" `Quick test_im2col_agrees;
          Alcotest.test_case "im2col with tiny blocks" `Quick test_im2col_small_blocks;
          Alcotest.test_case "winograd agrees with direct" `Quick test_winograd_agrees;
          Alcotest.test_case "winograd rejects stride" `Quick test_winograd_rejects_stride;
          Alcotest.test_case "winograd saves multiplications" `Quick
            test_winograd_fewer_multiplications;
        ] );
      ( "tiled_direct",
        [
          Alcotest.test_case "agrees with direct" `Quick test_tiled_direct_agrees;
          Alcotest.test_case "alpha sweep" `Quick test_tiled_direct_alpha_sweep;
          Alcotest.test_case "io matches io_only" `Quick test_tiled_direct_io_matches_io_only;
          Alcotest.test_case "io closed form" `Quick test_tiled_direct_io_decomposition;
          Alcotest.test_case "bigger tiles less io" `Quick test_tiled_direct_bigger_tiles_less_io;
          Alcotest.test_case "working set" `Quick test_tiled_direct_working_set;
          QCheck_alcotest.to_alcotest qcheck_tiled_direct_agreement;
          QCheck_alcotest.to_alcotest qcheck_grouped_agreement;
          QCheck_alcotest.to_alcotest qcheck_io_only_matches_run;
        ] );
      ( "tiled_winograd",
        [
          Alcotest.test_case "agrees with direct" `Quick test_tiled_winograd_agrees;
          Alcotest.test_case "io matches io_only" `Quick test_tiled_winograd_io_matches;
          Alcotest.test_case "rejects bad tile" `Quick test_tiled_winograd_rejects_bad_tile;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "tiled direct matches sequential" `Quick
            test_parallel_exec_matches_sequential;
          Alcotest.test_case "tiled winograd matches" `Quick test_parallel_winograd_matches;
          Alcotest.test_case "direct matches" `Quick test_parallel_direct_matches;
          Alcotest.test_case "tiled direct bit-identical" `Quick
            test_parallel_exec_bit_identical;
        ] );
      ( "grouped",
        [
          Alcotest.test_case "direct matches block-diagonal oracle" `Quick
            test_grouped_direct_matches_block_diagonal;
          Alcotest.test_case "tiled dataflow" `Quick test_grouped_tiled_direct;
          Alcotest.test_case "im2col" `Quick test_grouped_im2col;
          Alcotest.test_case "spec properties" `Quick test_grouped_spec_properties;
          Alcotest.test_case "parallel execution" `Quick test_grouped_parallel;
        ] );
      ( "dataflow-variants",
        [
          Alcotest.test_case "weight-stationary agrees" `Quick test_weight_stationary_agrees;
          Alcotest.test_case "input-stationary agrees" `Quick test_input_stationary_agrees;
          Alcotest.test_case "output-stationary wins traffic" `Quick
            test_output_stationary_wins;
        ] );
      ( "layout",
        [
          Alcotest.test_case "layout kernels agree" `Quick test_direct_layout_agrees;
          Alcotest.test_case "pack/unpack roundtrip" `Quick test_direct_layout_pack_roundtrip;
        ] );
      ( "io",
        [
          Alcotest.test_case "io_count algebra" `Quick test_io_count_algebra;
          Alcotest.test_case "im2col io exceeds tiled" `Quick test_im2col_io_exceeds_tiled;
        ] );
    ]
