(* Tests for the gradient-boosted trees library: dataset bookkeeping, single
   regression trees on separable data, and boosting's ability to drive
   training error down on nonlinear targets. *)

let make_dataset n f =
  let rng = Util.Rng.create 99 in
  let data = Gbt.Dataset.create ~n_features:2 in
  for _ = 1 to n do
    let x0 = Util.Rng.float rng 4.0 -. 2.0 and x1 = Util.Rng.float rng 4.0 -. 2.0 in
    Gbt.Dataset.add data [| x0; x1 |] (f x0 x1)
  done;
  data

let test_dataset_basic () =
  let d = Gbt.Dataset.create ~n_features:3 in
  Alcotest.(check int) "empty" 0 (Gbt.Dataset.length d);
  Gbt.Dataset.add d [| 1.0; 2.0; 3.0 |] 7.0;
  Alcotest.(check int) "one" 1 (Gbt.Dataset.length d);
  Alcotest.(check int) "arity" 3 (Gbt.Dataset.n_features d);
  Alcotest.(check (float 0.0)) "target" 7.0 (Gbt.Dataset.target d 0);
  Alcotest.(check (array (float 0.0))) "features" [| 1.0; 2.0; 3.0 |] (Gbt.Dataset.features d 0)

let test_dataset_growth () =
  let d = Gbt.Dataset.create ~n_features:1 in
  for i = 1 to 1000 do
    Gbt.Dataset.add d [| float_of_int i |] (float_of_int i)
  done;
  Alcotest.(check int) "length" 1000 (Gbt.Dataset.length d);
  Alcotest.(check (float 0.0)) "row 500" 501.0 (Gbt.Dataset.target d 500)

let test_dataset_arity_mismatch () =
  let d = Gbt.Dataset.create ~n_features:2 in
  Alcotest.check_raises "arity" (Invalid_argument "Dataset.add: arity mismatch") (fun () ->
      Gbt.Dataset.add d [| 1.0 |] 0.0)

let test_dataset_fold () =
  let d = make_dataset 10 (fun _ _ -> 1.0) in
  let total = Gbt.Dataset.fold d ~init:0.0 (fun acc _ y -> acc +. y) in
  Alcotest.(check (float 1e-9)) "fold targets" 10.0 total

let test_tree_splits_step_function () =
  (* A single tree must nail a 1D step function. *)
  let data = make_dataset 200 (fun x0 _ -> if x0 > 0.0 then 10.0 else -10.0) in
  let n = Gbt.Dataset.length data in
  let grad = Array.init n (fun i -> -.Gbt.Dataset.target data i) in
  let hess = Array.make n 1.0 in
  (* With prediction 0, grad = pred - y = -y; leaf weights recover ~y for
     small lambda. *)
  let params = { Gbt.Tree.default_params with lambda = 1e-6; max_depth = 2 } in
  let tree = Gbt.Tree.fit params data ~grad ~hess in
  Alcotest.(check bool) "split found" true (Gbt.Tree.num_leaves tree >= 2);
  Alcotest.(check bool) "positive side" true
    (Float.abs (Gbt.Tree.predict tree [| 1.0; 0.0 |] -. 10.0) < 0.5);
  Alcotest.(check bool) "negative side" true
    (Float.abs (Gbt.Tree.predict tree [| -1.0; 0.0 |] +. 10.0) < 0.5)

let test_tree_pure_leaf_no_split () =
  let data = make_dataset 50 (fun _ _ -> 3.0) in
  let n = Gbt.Dataset.length data in
  let grad = Array.make n 0.0 and hess = Array.make n 1.0 in
  let tree = Gbt.Tree.fit Gbt.Tree.default_params data ~grad ~hess in
  Alcotest.(check int) "constant target: single leaf" 1 (Gbt.Tree.num_leaves tree)

let test_tree_depth_limited () =
  let data = make_dataset 300 (fun x0 x1 -> sin (3.0 *. x0) +. x1) in
  let n = Gbt.Dataset.length data in
  let grad = Array.init n (fun i -> -.Gbt.Dataset.target data i) in
  let hess = Array.make n 1.0 in
  let params = { Gbt.Tree.default_params with max_depth = 3 } in
  let tree = Gbt.Tree.fit params data ~grad ~hess in
  Alcotest.(check bool) "depth bounded" true (Gbt.Tree.depth tree <= 3)

let test_booster_fits_linear () =
  let data = make_dataset 300 (fun x0 x1 -> (2.0 *. x0) -. (3.0 *. x1) +. 1.0) in
  let booster = Gbt.Booster.train Gbt.Booster.default_params data in
  let rmse = Gbt.Booster.train_rmse booster data in
  Alcotest.(check bool) (Printf.sprintf "rmse %.3f small" rmse) true (rmse < 0.5)

let test_booster_fits_nonlinear () =
  let data = make_dataset 400 (fun x0 x1 -> (x0 *. x1) +. Float.abs x0) in
  let booster = Gbt.Booster.train Gbt.Booster.default_params data in
  let rmse = Gbt.Booster.train_rmse booster data in
  Alcotest.(check bool) (Printf.sprintf "rmse %.3f small" rmse) true (rmse < 0.4)

let test_booster_improves_with_rounds () =
  let data = make_dataset 300 (fun x0 x1 -> (x0 *. x1) +. sin x0) in
  let rmse_at rounds =
    let params = { Gbt.Booster.default_params with rounds } in
    Gbt.Booster.train_rmse (Gbt.Booster.train params data) data
  in
  let short = rmse_at 5 and long = rmse_at 80 in
  Alcotest.(check bool) (Printf.sprintf "5 rounds %.3f > 80 rounds %.3f" short long) true
    (long < short)

let test_booster_num_trees () =
  let data = make_dataset 50 (fun x0 _ -> x0) in
  let params = { Gbt.Booster.default_params with rounds = 7 } in
  Alcotest.(check int) "rounds = trees" 7 (Gbt.Booster.num_trees (Gbt.Booster.train params data))

let test_booster_empty_dataset () =
  let d = Gbt.Dataset.create ~n_features:1 in
  Alcotest.check_raises "empty" (Invalid_argument "Booster.train: empty dataset") (fun () ->
      ignore (Gbt.Booster.train Gbt.Booster.default_params d))

let test_booster_subsample () =
  let data = make_dataset 300 (fun x0 x1 -> x0 +. x1) in
  let rng = Util.Rng.create 4 in
  let params = { Gbt.Booster.default_params with subsample = 0.7 } in
  let booster = Gbt.Booster.train ~rng params data in
  let rmse = Gbt.Booster.train_rmse booster data in
  Alcotest.(check bool) (Printf.sprintf "subsampled rmse %.3f" rmse) true (rmse < 0.6)

let test_booster_predict_many () =
  let data = make_dataset 100 (fun x0 _ -> x0) in
  let booster = Gbt.Booster.train Gbt.Booster.default_params data in
  let rows = [| [| 0.5; 0.0 |]; [| -0.5; 0.0 |] |] in
  let out = Gbt.Booster.predict_many booster rows in
  Alcotest.(check int) "two predictions" 2 (Array.length out);
  Alcotest.(check bool) "ordering" true (out.(0) > out.(1))

let test_training_parallel_equals_sequential () =
  (* Bit-identical models at every domain count: split scans fold in feature
     order and all float accumulation orders are fixed, so fanning tree
     construction over real domains must not move a single ulp. *)
  Util.Pool.ensure_workers (Util.Pool.default ()) 3;
  let data = make_dataset 600 (fun x0 x1 -> (x0 *. x1) +. sin (3.0 *. x0) -. x1) in
  let params = { Gbt.Booster.default_params with rounds = 12 } in
  let seq = Gbt.Booster.train ~domains:1 params data in
  let probes =
    let rng = Util.Rng.create 5 in
    Array.init 50 (fun _ ->
        [| Util.Rng.float rng 4.0 -. 2.0; Util.Rng.float rng 4.0 -. 2.0 |])
  in
  let expected = Gbt.Booster.predict_many ~domains:1 seq probes in
  List.iter
    (fun domains ->
      let par = Gbt.Booster.train ~domains params data in
      let got = Gbt.Booster.predict_many ~domains par probes in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "bit-identical predictions at domains=%d" domains)
        expected got)
    [ 2; 4; 8 ]

(* --- binned view + histogram split finding --- *)

let test_bin_distinct_values () =
  (* 4 distinct values on feature 0: one bin per value, cuts at the midpoints
     of adjacent distinct values — the exact path's candidate thresholds. *)
  let d = Gbt.Dataset.create ~n_features:1 in
  List.iter (fun v -> Gbt.Dataset.add d [| v |] v) [ 3.0; 1.0; 2.0; 1.0; 7.0; 2.0 ];
  let b = Gbt.Dataset.bin d in
  Alcotest.(check int) "bins = distinct values" 4 (Gbt.Dataset.n_bins b 0);
  Alcotest.(check (array (float 0.0)))
    "cuts are midpoints"
    [| 1.5; 2.5; 5.0 |]
    (Array.init 3 (Gbt.Dataset.cut b 0));
  for i = 0 to Gbt.Dataset.binned_length b - 1 do
    let v = (Gbt.Dataset.features d i).(0) in
    let bin = Gbt.Dataset.bin_index b 0 i in
    (* Routing by bin agrees with routing by threshold at every cut. *)
    for c = 0 to Gbt.Dataset.n_bins b 0 - 2 do
      Alcotest.(check bool)
        (Printf.sprintf "sample %d cut %d" i c)
        (v <= Gbt.Dataset.cut b 0 c) (bin <= c)
    done
  done

let test_bin_quantile_path () =
  (* More distinct values than bins: cuts stay strictly increasing and the
     bin <-> threshold routing agreement must still hold everywhere. *)
  let rng = Util.Rng.create 11 in
  let d = Gbt.Dataset.create ~n_features:1 in
  for _ = 1 to 500 do
    let v = Util.Rng.float rng 10.0 in
    Gbt.Dataset.add d [| v |] v
  done;
  let b = Gbt.Dataset.bin ~max_bins:16 d in
  let nb = Gbt.Dataset.n_bins b 0 in
  Alcotest.(check bool) "uses at most max_bins" true (nb <= 16);
  Alcotest.(check bool) "uses more than one bin" true (nb > 1);
  for c = 0 to nb - 3 do
    Alcotest.(check bool)
      (Printf.sprintf "cuts increase at %d" c)
      true
      (Gbt.Dataset.cut b 0 c < Gbt.Dataset.cut b 0 (c + 1))
  done;
  for i = 0 to Gbt.Dataset.binned_length b - 1 do
    let v = (Gbt.Dataset.features d i).(0) in
    let bin = Gbt.Dataset.bin_index b 0 i in
    for c = 0 to nb - 2 do
      if (v <= Gbt.Dataset.cut b 0 c) <> (bin <= c) then
        Alcotest.failf "sample %d (%.6f, bin %d) disagrees with cut %d" i v bin c
    done
  done

let test_bin_rejects_bad_max_bins () =
  let d = make_dataset 10 (fun x0 _ -> x0) in
  List.iter
    (fun max_bins ->
      Alcotest.check_raises
        (Printf.sprintf "max_bins = %d" max_bins)
        (Invalid_argument "Dataset.bin: max_bins must be in [2, 256]")
        (fun () -> ignore (Gbt.Dataset.bin ~max_bins d)))
    [ 1; 257 ]

(* Binary features with integer-exact gradients: every float sum in either
   path is exact and the bin cut (0.5) equals the exact midpoint, so the
   histogram tree must be bit-for-bit the exact-presort tree. *)
let binary_dataset n =
  let rng = Util.Rng.create 17 in
  let d = Gbt.Dataset.create ~n_features:3 in
  for _ = 1 to n do
    let x = Array.init 3 (fun _ -> if Util.Rng.float rng 1.0 < 0.5 then 0.0 else 1.0) in
    Gbt.Dataset.add d x ((4.0 *. x.(0)) -. (2.0 *. x.(1)) +. (x.(0) *. x.(2)))
  done;
  d

let test_hist_tree_identical_on_binnable () =
  let d = binary_dataset 200 in
  let n = Gbt.Dataset.length d in
  let grad = Array.init n (fun i -> -.Gbt.Dataset.target d i) in
  let hess = Array.make n 1.0 in
  let exact = Gbt.Tree.fit Gbt.Tree.default_params d ~grad ~hess in
  let hist =
    Gbt.Tree.fit_hist Gbt.Tree.default_params (Gbt.Dataset.bin d) ~grad ~hess
  in
  Alcotest.(check string) "bit-identical trees" (Gbt.Tree.to_compact exact)
    (Gbt.Tree.to_compact hist)

let test_hist_booster_identical_on_binnable () =
  let d = binary_dataset 300 in
  let exact = Gbt.Booster.train ~domains:1 Gbt.Booster.default_params d in
  let hist = Gbt.Booster.train ~domains:1 Gbt.Booster.hist_params d in
  Alcotest.(check string) "bit-identical boosters" (Gbt.Booster.to_compact exact)
    (Gbt.Booster.to_compact hist)

let test_hist_leaf_out_matches_predict () =
  let d = make_dataset 400 (fun x0 x1 -> (x0 *. x1) +. sin (3.0 *. x0)) in
  let n = Gbt.Dataset.length d in
  let grad = Array.init n (fun i -> -.Gbt.Dataset.target d i) in
  let hess = Array.make n 1.0 in
  let binned = Gbt.Dataset.bin d in
  let leaf_out = Array.make n 0.0 in
  let tree = Gbt.Tree.fit_hist ~leaf_out Gbt.Tree.default_params binned ~grad ~hess in
  let expected = Array.init n (fun i -> Gbt.Tree.predict tree (Gbt.Dataset.features d i)) in
  Alcotest.(check (array (float 0.0))) "leaf_out = predict, bitwise" expected leaf_out

let test_hist_training_parallel_equals_sequential () =
  (* Same contract as the exact path: per-feature histogram rows are disjoint
     and subtree sample sets are disjoint, so domain count must not move a
     single ulp. *)
  Util.Pool.ensure_workers (Util.Pool.default ()) 3;
  let data = make_dataset 600 (fun x0 x1 -> (x0 *. x1) +. sin (3.0 *. x0) -. x1) in
  let params = { Gbt.Booster.hist_params with rounds = 12 } in
  let seq = Gbt.Booster.train ~domains:1 params data in
  let expected = Gbt.Booster.to_compact seq in
  List.iter
    (fun domains ->
      let par = Gbt.Booster.train ~domains params data in
      Alcotest.(check string)
        (Printf.sprintf "bit-identical hist booster at domains=%d" domains)
        expected (Gbt.Booster.to_compact par))
    [ 2; 4; 8 ]

let test_hist_booster_fits_nonlinear () =
  let data = make_dataset 400 (fun x0 x1 -> (x0 *. x1) +. Float.abs x0) in
  let booster = Gbt.Booster.train Gbt.Booster.hist_params data in
  let rmse = Gbt.Booster.train_rmse booster data in
  Alcotest.(check bool) (Printf.sprintf "hist rmse %.3f small" rmse) true (rmse < 0.4)

(* On arbitrary continuous data the histogram booster is an approximation of
   the exact one (cuts come from the global quantile grid, not per-node
   sorted orders) — but it must rank points the same way: the tuner only
   consumes the ordering.  Spearman over the train predictions of the two
   boosters stays near 1. *)
let qcheck_hist_ranks_like_exact =
  QCheck.Test.make ~name:"hist booster rank-correlates with exact" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let d = Gbt.Dataset.create ~n_features:3 in
      for _ = 1 to 250 do
        let x = Array.init 3 (fun _ -> Util.Rng.float rng 2.0 -. 1.0) in
        Gbt.Dataset.add d x
          ((3.0 *. x.(0)) +. (x.(1) *. x.(1)) -. (2.0 *. x.(0) *. x.(2))
          +. Util.Rng.float rng 0.1)
      done;
      let params rounds split_method =
        { Gbt.Booster.default_params with rounds; split_method }
      in
      let predictions b =
        Array.init (Gbt.Dataset.length d) (fun i ->
            Gbt.Booster.predict b (Gbt.Dataset.features d i))
      in
      let exact = predictions (Gbt.Booster.train (params 25 Gbt.Booster.Exact) d) in
      let hist = predictions (Gbt.Booster.train (params 25 Gbt.Booster.Hist) d) in
      Util.Stats.spearman exact hist > 0.9)

let qcheck_booster_interpolates_mean =
  QCheck.Test.make ~name:"constant datasets predict the constant" ~count:20
    QCheck.(float_range (-100.) 100.)
    (fun c ->
      let data = Gbt.Dataset.create ~n_features:1 in
      for i = 0 to 9 do
        Gbt.Dataset.add data [| float_of_int i |] c
      done;
      let booster = Gbt.Booster.train { Gbt.Booster.default_params with rounds = 3 } data in
      Float.abs (Gbt.Booster.predict booster [| 4.0 |] -. c) < 1e-6 +. (Float.abs c *. 1e-6))

let () =
  Alcotest.run "gbt"
    [
      ( "dataset",
        [
          Alcotest.test_case "basic" `Quick test_dataset_basic;
          Alcotest.test_case "growth" `Quick test_dataset_growth;
          Alcotest.test_case "arity mismatch" `Quick test_dataset_arity_mismatch;
          Alcotest.test_case "fold" `Quick test_dataset_fold;
        ] );
      ( "tree",
        [
          Alcotest.test_case "splits step function" `Quick test_tree_splits_step_function;
          Alcotest.test_case "pure leaf" `Quick test_tree_pure_leaf_no_split;
          Alcotest.test_case "depth limited" `Quick test_tree_depth_limited;
        ] );
      ( "booster",
        [
          Alcotest.test_case "fits linear" `Quick test_booster_fits_linear;
          Alcotest.test_case "fits nonlinear" `Quick test_booster_fits_nonlinear;
          Alcotest.test_case "improves with rounds" `Quick test_booster_improves_with_rounds;
          Alcotest.test_case "num trees" `Quick test_booster_num_trees;
          Alcotest.test_case "empty dataset" `Quick test_booster_empty_dataset;
          Alcotest.test_case "subsample" `Quick test_booster_subsample;
          Alcotest.test_case "predict many" `Quick test_booster_predict_many;
          Alcotest.test_case "parallel training = sequential" `Quick
            test_training_parallel_equals_sequential;
          QCheck_alcotest.to_alcotest qcheck_booster_interpolates_mean;
        ] );
      ( "hist",
        [
          Alcotest.test_case "bin: one bin per distinct value" `Quick
            test_bin_distinct_values;
          Alcotest.test_case "bin: quantile path routes like thresholds" `Quick
            test_bin_quantile_path;
          Alcotest.test_case "bin: rejects bad max_bins" `Quick
            test_bin_rejects_bad_max_bins;
          Alcotest.test_case "tree identical to exact on binnable data" `Quick
            test_hist_tree_identical_on_binnable;
          Alcotest.test_case "booster identical to exact on binnable data" `Quick
            test_hist_booster_identical_on_binnable;
          Alcotest.test_case "leaf_out matches predict bitwise" `Quick
            test_hist_leaf_out_matches_predict;
          Alcotest.test_case "parallel training = sequential" `Quick
            test_hist_training_parallel_equals_sequential;
          Alcotest.test_case "fits nonlinear" `Quick test_hist_booster_fits_nonlinear;
          QCheck_alcotest.to_alcotest qcheck_hist_ranks_like_exact;
        ] );
    ]
