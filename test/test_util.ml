(* Unit and property tests for the util library: Rng determinism and
   distribution sanity, Stats numerics, Parallel equivalence with sequential
   execution, Table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Util.Rng.int64 a <> Util.Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_int_range () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Util.Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_range () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Util.Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.5)
  done

let test_rng_split_independent () =
  let parent = Util.Rng.create 5 in
  let child = Util.Rng.split parent in
  let a = Util.Rng.int64 parent and b = Util.Rng.int64 child in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_mean () =
  let rng = Util.Rng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Util.Rng.float rng 1.0) in
  let m = Util.Stats.mean xs in
  Alcotest.(check bool) "uniform mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 12 in
  let xs = Array.init 20_000 (fun _ -> Util.Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Util.Stats.mean xs) < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Util.Stats.stddev xs -. 1.0) < 0.05)

let test_shuffle_permutation () =
  let rng = Util.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_stats_mean () = check_float "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_median_odd () =
  check_float "median odd" 3.0 (Util.Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_float "median even" 2.5 (Util.Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = [| 0.0; 10.0 |] in
  check_float "p0" 0.0 (Util.Stats.percentile xs 0.0);
  check_float "p100" 10.0 (Util.Stats.percentile xs 100.0);
  check_float "p25" 2.5 (Util.Stats.percentile xs 25.0)

let test_stats_stddev () =
  check_float "stddev" 2.0 (Util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_minmax_argmin () =
  let xs = [| 3.0; -1.0; 7.0 |] in
  let lo, hi = Util.Stats.min_max xs in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi;
  Alcotest.(check int) "argmin" 1 (Util.Stats.argmin xs)

let test_stats_rmse () =
  check_float "rmse" 1.0 (Util.Stats.rmse [| 1.0; 2.0 |] [| 2.0; 1.0 |])

let test_stats_trimmed_mean () =
  (* 10% of 10 samples trims one from each end: the outliers vanish. *)
  let xs = [| 1000.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0; 0.001 |] in
  check_float "outliers trimmed" 5.0 (Util.Stats.trimmed_mean xs 0.1);
  check_float "frac 0 is the mean" (Util.Stats.mean xs) (Util.Stats.trimmed_mean xs 0.0);
  check_float "single sample" 3.0 (Util.Stats.trimmed_mean [| 3.0 |] 0.4)

let test_parallel_recommended_domains () =
  let d = Util.Parallel.recommended_domains () in
  Alcotest.(check bool) "within [1, 8]" true (d >= 1 && d <= 8)

(* Grow the shared pool so the parallel paths below cross real domains even
   on single-core CI hosts (where the default pool starts with 0 workers). *)
let () = Util.Pool.ensure_workers (Util.Pool.default ()) 3

let test_parallel_for_matches_sequential () =
  let n = 1000 in
  let seq = Array.make n 0 and par = Array.make n 0 in
  for i = 0 to n - 1 do
    seq.(i) <- i * i
  done;
  Util.Parallel.for_ ~domains:4 0 n (fun i -> par.(i) <- i * i);
  Alcotest.(check (array int)) "same results" seq par

let test_parallel_map () =
  let a = Array.init 100 Fun.id in
  let doubled = Util.Parallel.map ~domains:3 a (fun x -> 2 * x) in
  Alcotest.(check (array int)) "map" (Array.map (fun x -> 2 * x) a) doubled

let test_parallel_reduce () =
  let total = Util.Parallel.reduce ~domains:4 0 101 ~init:0 Fun.id ( + ) in
  Alcotest.(check int) "sum 0..100" 5050 total

let test_parallel_reduce_nonidentity_init () =
  (* The seed implementation folded [init] into every chunk; it must enter
     the result exactly once regardless of the domain count. *)
  List.iter
    (fun domains ->
      let total = Util.Parallel.reduce ~domains 0 10 ~init:1000 Fun.id ( + ) in
      Alcotest.(check int) (Printf.sprintf "init once at domains=%d" domains) 1045 total)
    [ 1; 2; 4; 8 ];
  let product = Util.Parallel.reduce ~domains:3 1 7 ~init:10 Fun.id ( * ) in
  Alcotest.(check int) "product with non-identity init" 7200 product

let test_parallel_reduce_domain_invariant () =
  let at domains =
    Util.Parallel.reduce ~domains 0 1000 ~init:0.5 (fun i -> float_of_int i *. 0.25) ( +. )
  in
  let expected = at 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "domains=%d" domains)
        expected (at domains))
    [ 2; 3; 8 ]

let test_parallel_empty_range () =
  Util.Parallel.for_ ~domains:4 5 5 (fun _ -> Alcotest.fail "must not run");
  let r = Util.Parallel.reduce ~domains:4 5 5 ~init:7 (fun _ -> 0) ( + ) in
  Alcotest.(check int) "reduce empty" 7 r

(* --- the persistent domain pool --- *)

exception Boom of int

let test_pool_runs_everything () =
  let pool = Util.Pool.create ~workers:3 () in
  Alcotest.(check int) "workers" 3 (Util.Pool.workers pool);
  let n = 64 in
  let hits = Array.make n 0 in
  Util.Pool.run_all pool (List.init n (fun i () -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check (array int)) "each task exactly once" (Array.make n 1) hits;
  Util.Pool.shutdown pool

let test_pool_repeated_submission () =
  let pool = Util.Pool.create ~workers:2 () in
  let total = Atomic.make 0 in
  for _ = 1 to 200 do
    Util.Pool.run_all pool
      (List.init 5 (fun i () -> ignore (Atomic.fetch_and_add total (i + 1))))
  done;
  Alcotest.(check int) "200 rounds of 1+..+5" 3000 (Atomic.get total);
  Util.Pool.shutdown pool

let test_pool_nested_submission () =
  (* A pooled task that itself submits must not deadlock: waiting threads
     help drain the queue. *)
  let pool = Util.Pool.create ~workers:2 () in
  let cells = Array.make 16 0 in
  Util.Pool.run_all pool
    (List.init 4 (fun outer () ->
         Util.Pool.run_all pool
           (List.init 4 (fun inner () -> cells.((outer * 4) + inner) <- 1))));
  Alcotest.(check (array int)) "all leaves ran" (Array.make 16 1) cells;
  Util.Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Util.Pool.create ~workers:2 () in
  let survivors = Atomic.make 0 in
  (try
     Util.Pool.run_all pool
       (List.init 8 (fun i () ->
            if i = 3 then raise (Boom i) else ignore (Atomic.fetch_and_add survivors 1)));
     Alcotest.fail "expected Boom"
   with Boom 3 -> ());
  Alcotest.(check int) "siblings still ran" 7 (Atomic.get survivors);
  (* The pool must stay usable after a failed call. *)
  let ok = ref false in
  Util.Pool.run_all pool [ (fun () -> ok := true); (fun () -> ()) ];
  Alcotest.(check bool) "usable after failure" true !ok;
  Util.Pool.shutdown pool

let test_pool_faults_at_random_indices () =
  (* The satellite contract under arbitrary fault placement: for any subset
     of faulting tasks, run_all still runs every non-faulting task exactly
     once, re-raises one of the injected exceptions, and leaves the pool
     usable for the next batch.  Fault positions come from a seeded Rng so
     the test is reproducible yet covers many placements. *)
  let pool = Util.Pool.create ~workers:3 () in
  let rng = Util.Rng.create 2024 in
  for round = 1 to 25 do
    let n = 1 + Util.Rng.int rng 32 in
    let faulty = Array.init n (fun _ -> Util.Rng.float rng 1.0 < 0.3) in
    let hits = Array.make n 0 in
    let expect_fault = Array.exists Fun.id faulty in
    (match
       Util.Pool.run_all pool
         (List.init n (fun i () ->
              if faulty.(i) then raise (Boom i) else hits.(i) <- hits.(i) + 1))
     with
    | () -> if expect_fault then Alcotest.fail "expected a Boom to propagate"
    | exception Boom i ->
      if not faulty.(i) then Alcotest.fail "raised exception from a non-faulty index");
    Array.iteri
      (fun i h ->
        Alcotest.(check int)
          (Printf.sprintf "round %d task %d" round i)
          (if faulty.(i) then 0 else 1)
          h)
      hits
  done;
  (* After 25 faulting fan-outs the pool still works. *)
  let total = Atomic.make 0 in
  Util.Pool.run_all pool (List.init 16 (fun _ () -> ignore (Atomic.fetch_and_add total 1)));
  Alcotest.(check int) "pool usable after faulting rounds" 16 (Atomic.get total);
  Util.Pool.shutdown pool

let test_pool_deadline () =
  let pool = Util.Pool.create ~workers:0 () in
  (* Zero workers forces inline execution, making the fake clock's ticking
     order deterministic: tasks start strictly one after another. *)
  let clock = ref 0.0 in
  let now () = !clock in
  let ran = Array.make 10 false in
  let task i () =
    ran.(i) <- true;
    clock := !clock +. 1.0
  in
  let n = Util.Pool.run_all_deadline pool ~now ~deadline:4.5 (List.init 10 task) in
  Alcotest.(check int) "five tasks started before the deadline" 5 n;
  Alcotest.(check (array bool))
    "exactly the first five ran"
    (Array.init 10 (fun i -> i < 5))
    ran;
  (* A deadline in the past runs nothing. *)
  clock := 0.0;
  let m = Util.Pool.run_all_deadline pool ~now ~deadline:0.0 [ (fun () -> Alcotest.fail "must not run") ] in
  Alcotest.(check int) "expired deadline skips all" 0 m;
  (* Exceptions propagate and faulting tasks are not counted. *)
  clock := 0.0;
  (match
     Util.Pool.run_all_deadline pool ~now ~deadline:100.0
       [ (fun () -> clock := !clock +. 1.0); (fun () -> raise (Boom 1)) ]
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ());
  Util.Pool.shutdown pool

let test_pool_deadline_parallel () =
  (* Over real workers the start-order is nondeterministic, so assert the
     weaker (scheduling-independent) contract: the count matches the tasks
     that actually ran, and a generous deadline runs everything. *)
  let pool = Util.Pool.create ~workers:3 () in
  let clock = Atomic.make 0 in
  let now () = float_of_int (Atomic.get clock) in
  let ran = Atomic.make 0 in
  let task () =
    ignore (Atomic.fetch_and_add clock 1);
    ignore (Atomic.fetch_and_add ran 1)
  in
  let n = Util.Pool.run_all_deadline pool ~now ~deadline:1e9 (List.init 40 (fun _ -> task)) in
  Alcotest.(check int) "all tasks ran" 40 n;
  Alcotest.(check int) "count matches executions" 40 (Atomic.get ran);
  Util.Pool.shutdown pool

(* Spin until [cond] holds; the watchdog's respawn happens on a worker
   domain, so the test thread has to wait for it to be observable. *)
let await_or_fail name cond =
  let rec go n =
    if cond () then ()
    else if n = 0 then Alcotest.fail (name ^ ": timed out waiting")
    else begin
      Domain.cpu_relax ();
      go (n - 1)
    end
  in
  go 500_000_000

let test_pool_worker_restart () =
  (* An uncaught exception from a fire-and-forget task kills its worker; the
     watchdog replaces the domain, so later tasks still run off-thread. *)
  let pool = Util.Pool.create ~workers:1 () in
  Util.Pool.submit pool (fun () -> raise (Boom 0));
  let hit = Atomic.make false in
  Util.Pool.submit pool (fun () -> Atomic.set hit true);
  await_or_fail "task after crash" (fun () -> Atomic.get hit);
  Alcotest.(check int) "one restart recorded" 1 (Util.Pool.restarts pool);
  Alcotest.(check int) "capacity preserved" 1 (Util.Pool.workers pool);
  Alcotest.(check bool) "within budget: not degraded" false (Util.Pool.is_degraded pool);
  (* run_all still works over the replacement worker. *)
  let total = Atomic.make 0 in
  Util.Pool.run_all pool (List.init 8 (fun _ () -> ignore (Atomic.fetch_and_add total 1)));
  Alcotest.(check int) "run_all after restart" 8 (Atomic.get total);
  Util.Pool.shutdown pool

let test_pool_bounded_restart_watchdog () =
  (* The restart budget is finite: past [max_restarts] a crashing worker
     dies unreplaced, so a crash-looping task cannot spawn domains forever.
     The pool then degrades to inline execution instead of failing. *)
  let pool = Util.Pool.create ~workers:1 ~max_restarts:2 () in
  Alcotest.(check bool) "healthy pool is not degraded" false (Util.Pool.is_degraded pool);
  for i = 0 to 2 do
    Util.Pool.submit pool (fun () -> raise (Boom i));
    (* Wait out each crash so exactly this worker (not a helper) takes it. *)
    await_or_fail "crash recorded" (fun () -> Util.Pool.restarts pool = i + 1)
  done;
  await_or_fail "worker retired past the budget" (fun () -> Util.Pool.workers pool = 0);
  Alcotest.(check int) "budget + final crash recorded" 3 (Util.Pool.restarts pool);
  Alcotest.(check bool) "exhausted watchdog reports degraded" true
    (Util.Pool.is_degraded pool);
  (* Zero workers: run_all degrades to inline, submit runs inline too. *)
  let ran = ref 0 in
  Util.Pool.run_all pool [ (fun () -> incr ran); (fun () -> incr ran) ];
  Alcotest.(check int) "inline run_all" 2 !ran;
  Util.Pool.submit pool (fun () -> incr ran);
  Alcotest.(check int) "inline submit" 3 !ran;
  (* An inline submit that crashes is absorbed and counted, never raised. *)
  Util.Pool.submit pool (fun () -> raise (Boom 9));
  Alcotest.(check int) "inline crash absorbed" 4 (Util.Pool.restarts pool);
  (* ensure_workers revives the pool after the watchdog gave up. *)
  Util.Pool.ensure_workers pool 1;
  Alcotest.(check int) "revived" 1 (Util.Pool.workers pool);
  let hit = Atomic.make false in
  Util.Pool.submit pool (fun () -> Atomic.set hit true);
  await_or_fail "revived worker runs" (fun () -> Atomic.get hit);
  Util.Pool.shutdown pool

let test_pool_shutdown_and_inline () =
  let pool = Util.Pool.create ~workers:2 () in
  Util.Pool.shutdown pool;
  Util.Pool.shutdown pool;
  Alcotest.(check int) "no workers" 0 (Util.Pool.workers pool);
  (* Submissions after shutdown run inline and still raise faithfully. *)
  let ran = ref 0 in
  Util.Pool.run_all pool [ (fun () -> incr ran); (fun () -> incr ran) ];
  Alcotest.(check int) "inline after shutdown" 2 !ran;
  (try
     Util.Pool.run_all pool [ (fun () -> incr ran); (fun () -> raise (Boom 0)) ];
     Alcotest.fail "expected Boom"
   with Boom 0 -> ());
  Alcotest.(check int) "inline tasks all ran" 3 !ran;
  Util.Pool.ensure_workers pool 2;
  Alcotest.(check int) "revived" 2 (Util.Pool.workers pool);
  let hit = ref false in
  Util.Pool.run_all pool [ (fun () -> hit := true); (fun () -> ()) ];
  Alcotest.(check bool) "revived pool runs" true !hit;
  Util.Pool.shutdown pool

let test_pool_default_grows () =
  let pool = Util.Pool.default () in
  Util.Pool.ensure_workers pool 3;
  Alcotest.(check bool) "at least 3 workers" true (Util.Pool.workers pool >= 3);
  (* for_/map/reduce route through the default pool. *)
  let a = Array.init 1000 Fun.id in
  let doubled = Util.Parallel.map ~domains:4 a (fun x -> 2 * x) in
  Alcotest.(check (array int)) "map over grown pool" (Array.map (fun x -> 2 * x) a) doubled

let test_table_render () =
  let t = Util.Table.create [ "a"; "bee" ] in
  Util.Table.add_row t [ "1"; "2" ];
  Util.Table.add_row t [ "10"; "20" ];
  let tmp = Filename.temp_file "table" ".txt" in
  let oc = open_out tmp in
  Util.Table.print ~out:oc t;
  close_out oc;
  let ic = open_in tmp in
  let first = input_line ic in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check string) "header row" "| a  | bee |" first

let test_table_cells () =
  Alcotest.(check string) "cell_f" "3.14" (Util.Table.cell_f 3.14159);
  Alcotest.(check string) "cell_sci" "1.00e+06" (Util.Table.cell_sci 1_000_000.0)

let test_float32_round () =
  Alcotest.(check (float 0.0)) "exact values unchanged" 0.5 (Util.Float32.round 0.5);
  Alcotest.(check (float 0.0)) "integers unchanged" 12345.0 (Util.Float32.round 12345.0);
  let x = 0.1 in
  let r = Util.Float32.round x in
  Alcotest.(check bool) "0.1 is inexact in binary32" true (r <> x);
  Alcotest.(check bool) "relative error within epsilon" true
    (Float.abs (r -. x) /. x <= Util.Float32.machine_epsilon);
  let a = [| 0.1; 0.25; 1.0 /. 3.0 |] in
  let b = Util.Float32.round_array a in
  Alcotest.(check (float 0.0)) "0.25 exact" 0.25 b.(1);
  Util.Float32.round_inplace a;
  Alcotest.(check (array (float 0.0))) "inplace = array" b a

(* ------------------------------------------------------------------ *)
(* Clock: the monotonic source behind every daemon deadline.  The property
   that matters is NOT "backward steps are flattened" but "backward steps
   are absorbed": after NTP steps the raw clock back an hour, elapsed time
   must keep accumulating immediately — a clamp-flat clock would silently
   disable deadline enforcement for the whole hour. *)

let test_clock_monotonic_absorbs_backward_step () =
  (* Scripted raw clock: advances 1s per call, with a 3600s backward step
     in the middle. *)
  let script = [ 100.0; 101.0; 102.0; (* NTP step: *) -3498.0; -3497.0; -3496.0 ] in
  let remaining = ref script in
  let raw () =
    match !remaining with
    | [] -> Alcotest.fail "raw clock over-consumed"
    | t :: rest ->
      remaining := rest;
      t
  in
  let clock = Util.Clock.monotonic ~raw () in
  let t0 = clock () in
  let t1 = clock () in
  let t2 = clock () in
  Alcotest.(check (float 1e-9)) "advances with raw" 1.0 (t1 -. t0);
  Alcotest.(check (float 1e-9)) "advances with raw (2)" 1.0 (t2 -. t1);
  let t3 = clock () in
  Alcotest.(check bool) "never goes backward" true (t3 >= t2);
  (* The crucial half: time resumes advancing at the raw rate right away,
     instead of waiting 3600s for raw to catch back up. *)
  let t4 = clock () in
  let t5 = clock () in
  Alcotest.(check (float 1e-9)) "elapsed accrues across the step" 1.0 (t4 -. t3);
  Alcotest.(check (float 1e-9)) "elapsed accrues across the step (2)" 1.0 (t5 -. t4)

let test_clock_monotonic_real () =
  let clock = Util.Clock.monotonic () in
  let a = clock () in
  let b = clock () in
  Alcotest.(check bool) "real clock is monotone" true (b >= a)

let test_clock_manual () =
  let clock, set = Util.Clock.manual 10.0 in
  Alcotest.(check (float 0.0)) "starts at t0" 10.0 (clock ());
  set 42.5;
  Alcotest.(check (float 0.0)) "steps forward" 42.5 (clock ());
  set 1.0;
  Alcotest.(check (float 0.0)) "manual clock is raw: tests own monotonicity"
    1.0 (clock ())

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Util.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Util.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Util.Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Util.Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write_and_table_export () =
  let path = Filename.temp_file "table" ".csv" in
  let t = Util.Table.create [ "name"; "value" ] in
  Util.Table.add_row t [ "speed,up"; "1.5" ];
  Util.Table.add_row t [ "plain"; "2" ];
  Util.Table.to_csv t path;
  let ic = open_in path in
  let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "name,value" l1;
  Alcotest.(check string) "quoted row" "\"speed,up\",1.5" l2;
  Alcotest.(check string) "plain row" "plain,2" l3

let qcheck_float32_idempotent =
  QCheck.Test.make ~name:"float32 rounding is idempotent" ~count:200
    QCheck.(float_range (-1e6) 1e6)
    (fun x ->
      let r = Util.Float32.round x in
      Util.Float32.round r = r)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 20) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Util.Stats.percentile xs lo <= Util.Stats.percentile xs hi +. 1e-9)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean lies within min/max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 30) (float_range (-50.) 50.))
    (fun xs ->
      let lo, hi = Util.Stats.min_max xs in
      let m = Util.Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Warn-once deduplication (Log.once / Durable.warn_dropped). *)

let test_log_once_per_key () =
  Util.Log.reset_once ();
  Alcotest.(check bool) "first sighting fires" true (Util.Log.once "log-test:a");
  Alcotest.(check bool) "repeat suppressed" false (Util.Log.once "log-test:a");
  Alcotest.(check bool) "different key independent" true (Util.Log.once "log-test:b");
  Util.Log.reset_once ();
  Alcotest.(check bool) "reset forgets" true (Util.Log.once "log-test:a")

let test_log_quiet_does_not_consume () =
  Util.Log.reset_once ();
  let prev = Util.Log.level () in
  Fun.protect
    ~finally:(fun () -> Util.Log.set_level prev)
    (fun () ->
      Util.Log.set_quiet true;
      Util.Log.warn_oncef ~key:"log-test:quiet" "suppressed %d\n" 1;
      (* Quiet swallowed the message without consuming the key, so the
         warning is not lost forever if verbosity comes back. *)
      Alcotest.(check bool) "key survives quiet emission" true
        (Util.Log.once "log-test:quiet"))

(* A damaged durable file read twice warns exactly once — and a *different*
   damaged path still gets its own warning (per-path, not per-process). *)
let test_durable_salvage_warns_once_per_path () =
  Util.Log.reset_once ();
  let prev = Util.Log.level () in
  Fun.protect
    ~finally:(fun () -> Util.Log.set_level prev)
    (fun () ->
      Util.Log.set_quiet true;
      let damaged () =
        let path = Filename.temp_file "warnonce" ".dur" in
        Util.Durable.append ~kind:"warn-once-test" path "payload";
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "garbage line\n";
        close_out oc;
        path
      in
      let pa = damaged () and pb = damaged () in
      (* Quiet here (test hygiene): the per-path key is only consumed when a
         warning would actually print, so consume them at Warn via [once]'s
         own bookkeeping by emitting through warn_oncef at Warn level. *)
      Util.Log.set_quiet false;
      let stderr_backup = Unix.dup Unix.stderr in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stderr;
      Fun.protect
        ~finally:(fun () ->
          Unix.dup2 stderr_backup Unix.stderr;
          Unix.close stderr_backup;
          Unix.close devnull)
        (fun () ->
          Util.Durable.warn_dropped ~path:pa (Util.Durable.read ~kind:"warn-once-test" pa);
          Util.Durable.warn_dropped ~path:pa (Util.Durable.read ~kind:"warn-once-test" pa));
      (* First read consumed pa's key; the repeat was deduplicated.  pb has
         never warned, so its key is still fresh. *)
      Alcotest.(check bool) "pa consumed by first warning" false
        (Util.Log.once ("durable-salvage:" ^ pa));
      Alcotest.(check bool) "pb still pending its one warning" true
        (Util.Log.once ("durable-salvage:" ^ pb));
      Sys.remove pa;
      Sys.remove pb);
  Util.Log.reset_once ()

let () =
  Alcotest.run "util"
    [
      ( "log",
        [
          Alcotest.test_case "once per key" `Quick test_log_once_per_key;
          Alcotest.test_case "quiet does not consume keys" `Quick
            test_log_quiet_does_not_consume;
          Alcotest.test_case "durable salvage warns once per path" `Quick
            test_durable_salvage_warns_once_per_path;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile endpoints" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max/argmin" `Quick test_stats_minmax_argmin;
          Alcotest.test_case "rmse" `Quick test_stats_rmse;
          Alcotest.test_case "trimmed mean" `Quick test_stats_trimmed_mean;
          QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
          QCheck_alcotest.to_alcotest qcheck_mean_bounds;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "recommended domains" `Quick test_parallel_recommended_domains;
          Alcotest.test_case "for_ matches sequential" `Quick test_parallel_for_matches_sequential;
          Alcotest.test_case "map" `Quick test_parallel_map;
          Alcotest.test_case "reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "reduce non-identity init" `Quick
            test_parallel_reduce_nonidentity_init;
          Alcotest.test_case "reduce domain invariant" `Quick
            test_parallel_reduce_domain_invariant;
          Alcotest.test_case "empty range" `Quick test_parallel_empty_range;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs everything" `Quick test_pool_runs_everything;
          Alcotest.test_case "repeated submission" `Quick test_pool_repeated_submission;
          Alcotest.test_case "nested submission" `Quick test_pool_nested_submission;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "faults at random indices" `Quick
            test_pool_faults_at_random_indices;
          Alcotest.test_case "deadline gating" `Quick test_pool_deadline;
          Alcotest.test_case "deadline over workers" `Quick test_pool_deadline_parallel;
          Alcotest.test_case "worker restart after crash" `Quick test_pool_worker_restart;
          Alcotest.test_case "bounded restart watchdog" `Quick
            test_pool_bounded_restart_watchdog;
          Alcotest.test_case "shutdown + inline + revive" `Quick test_pool_shutdown_and_inline;
          Alcotest.test_case "default pool grows" `Quick test_pool_default_grows;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "float32",
        [
          Alcotest.test_case "rounding" `Quick test_float32_round;
          QCheck_alcotest.to_alcotest qcheck_float32_idempotent;
        ] );
      ( "clock",
        [
          Alcotest.test_case "backward step absorbed, not flattened" `Quick
            test_clock_monotonic_absorbs_backward_step;
          Alcotest.test_case "real source monotone" `Quick test_clock_monotonic_real;
          Alcotest.test_case "manual clock" `Quick test_clock_manual;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "write + table export" `Quick test_csv_write_and_table_export;
        ] );
    ]
