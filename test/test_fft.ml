(* Tests for the FFT substrate: known transforms, agreement with the naive
   DFT, roundtrips, Parseval's identity, 2D transforms, and the FFT-based
   convolution against the direct reference. *)

module T = Fft.Transform

let complex re im = { Complex.re; im }

let check_complex_array name expected actual =
  Array.iteri
    (fun i (e : Complex.t) ->
      let a : Complex.t = actual.(i) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%s[%d].re" name i) e.re a.re;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%s[%d].im" name i) e.im a.im)
    expected

let test_power_of_two () =
  Alcotest.(check bool) "1" true (T.is_power_of_two 1);
  Alcotest.(check bool) "64" true (T.is_power_of_two 64);
  Alcotest.(check bool) "48" false (T.is_power_of_two 48);
  Alcotest.(check bool) "0" false (T.is_power_of_two 0);
  Alcotest.(check int) "next 1" 1 (T.next_power_of_two 1);
  Alcotest.(check int) "next 5" 8 (T.next_power_of_two 5);
  Alcotest.(check int) "next 16" 16 (T.next_power_of_two 16)

let test_fft_impulse () =
  (* FFT of a unit impulse is all ones. *)
  let a = Array.make 8 Complex.zero in
  a.(0) <- Complex.one;
  T.fft a;
  check_complex_array "impulse" (Array.make 8 Complex.one) a

let test_fft_constant () =
  (* FFT of a constant is an impulse of height n. *)
  let a = Array.make 8 Complex.one in
  T.fft a;
  let expected = Array.make 8 Complex.zero in
  expected.(0) <- complex 8.0 0.0;
  check_complex_array "constant" expected a

let test_fft_matches_naive_dft () =
  let rng = Util.Rng.create 21 in
  List.iter
    (fun n ->
      let a =
        Array.init n (fun _ -> complex (Util.Rng.float rng 2.0 -. 1.0) (Util.Rng.float rng 2.0 -. 1.0))
      in
      let expected = T.dft_naive a in
      let fast = Array.copy a in
      T.fft fast;
      Array.iteri
        (fun i (e : Complex.t) ->
          Alcotest.(check (float 1e-8)) (Printf.sprintf "n=%d re" n) e.re fast.(i).Complex.re;
          Alcotest.(check (float 1e-8)) (Printf.sprintf "n=%d im" n) e.im fast.(i).Complex.im)
        expected)
    [ 1; 2; 4; 8; 32; 128 ]

let test_fft_roundtrip () =
  let rng = Util.Rng.create 22 in
  let a = Array.init 64 (fun _ -> complex (Util.Rng.float rng 2.0 -. 1.0) 0.0) in
  let b = Array.copy a in
  T.fft b;
  T.ifft b;
  Array.iteri
    (fun i (x : Complex.t) ->
      Alcotest.(check (float 1e-9)) "roundtrip re" x.re b.(i).Complex.re;
      Alcotest.(check (float 1e-9)) "roundtrip im" x.im b.(i).Complex.im)
    a

let test_fft_parseval () =
  let rng = Util.Rng.create 23 in
  let a = Array.init 128 (fun _ -> complex (Util.Rng.float rng 2.0 -. 1.0) 0.0) in
  let energy = Array.fold_left (fun acc (x : Complex.t) -> acc +. (Complex.norm x ** 2.0)) 0.0 in
  let time_energy = energy a in
  T.fft a;
  let freq_energy = energy a /. 128.0 in
  Alcotest.(check (float 1e-7)) "Parseval" time_energy freq_energy

let test_fft_rejects_bad_length () =
  Alcotest.check_raises "length 6" (Invalid_argument "Transform.fft: length not a power of two")
    (fun () -> T.fft (Array.make 6 Complex.zero))

let test_fft_linearity () =
  let rng = Util.Rng.create 24 in
  let a = Array.init 32 (fun _ -> complex (Util.Rng.float rng 1.0) 0.0) in
  let b = Array.init 32 (fun _ -> complex (Util.Rng.float rng 1.0) 0.0) in
  let sum = Array.map2 Complex.add a b in
  T.fft a;
  T.fft b;
  T.fft sum;
  Array.iteri
    (fun i (s : Complex.t) ->
      let expected = Complex.add a.(i) b.(i) in
      Alcotest.(check (float 1e-8)) "linear re" expected.re s.re;
      Alcotest.(check (float 1e-8)) "linear im" expected.im s.im)
    sum

let test_fft2_roundtrip () =
  let rng = Util.Rng.create 25 in
  let rows = 8 and cols = 16 in
  let a = Array.init (rows * cols) (fun _ -> complex (Util.Rng.float rng 2.0 -. 1.0) 0.0) in
  let b = Array.copy a in
  T.fft2 b ~rows ~cols;
  T.ifft2 b ~rows ~cols;
  Array.iteri
    (fun i (x : Complex.t) ->
      Alcotest.(check (float 1e-8)) "fft2 roundtrip" x.re b.(i).Complex.re)
    a

let test_fft2_separable_impulse () =
  let rows = 4 and cols = 4 in
  let a = Array.make (rows * cols) Complex.zero in
  a.(0) <- Complex.one;
  T.fft2 a ~rows ~cols;
  Array.iter
    (fun (x : Complex.t) ->
      Alcotest.(check (float 1e-9)) "flat spectrum re" 1.0 x.re;
      Alcotest.(check (float 1e-9)) "flat spectrum im" 0.0 x.im)
    a

let test_fft2_matches_naive () =
  (* 2D DFT by two naive 1D passes must equal fft2. *)
  let rows = 4 and cols = 8 in
  let rng = Util.Rng.create 27 in
  let a =
    Array.init (rows * cols) (fun _ -> complex (Util.Rng.float rng 2.0 -. 1.0) (Util.Rng.float rng 2.0 -. 1.0))
  in
  let expected =
    (* Naive row pass. *)
    let after_rows = Array.copy a in
    for r = 0 to rows - 1 do
      let row = Array.sub after_rows (r * cols) cols in
      Array.blit (T.dft_naive row) 0 after_rows (r * cols) cols
    done;
    (* Naive column pass. *)
    let out = Array.copy after_rows in
    for c = 0 to cols - 1 do
      let column = Array.init rows (fun r -> after_rows.((r * cols) + c)) in
      let t = T.dft_naive column in
      for r = 0 to rows - 1 do
        out.((r * cols) + c) <- t.(r)
      done
    done;
    out
  in
  let fast = Array.copy a in
  T.fft2 fast ~rows ~cols;
  Array.iteri
    (fun i (e : Complex.t) ->
      Alcotest.(check (float 1e-7)) "fft2 re" e.re fast.(i).Complex.re;
      Alcotest.(check (float 1e-7)) "fft2 im" e.im fast.(i).Complex.im)
    expected

(* --- FFT convolution --- *)

let agree name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (max diff %.3g)" name (Tensor.max_abs_diff expected actual))
    true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-5 expected actual)

let test_fft_conv_agrees () =
  List.iter
    (fun (name, spec) ->
      let rng = Util.Rng.create 26 in
      let input, weights = Conv.Direct.random_problem rng spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      agree name expected (Conv.Fft_conv.run spec ~input ~weights))
    [
      ("basic 3x3", Conv.Conv_spec.make ~c_in:3 ~h_in:8 ~w_in:8 ~c_out:4 ~k_h:3 ~k_w:3 ());
      ("padded", Conv.Conv_spec.make ~c_in:2 ~h_in:7 ~w_in:7 ~c_out:3 ~k_h:3 ~k_w:3 ~pad:1 ());
      ("strided", Conv.Conv_spec.make ~c_in:2 ~h_in:9 ~w_in:9 ~c_out:2 ~k_h:3 ~k_w:3 ~stride:2 ());
      ("large kernel", Conv.Conv_spec.make ~c_in:2 ~h_in:12 ~w_in:12 ~c_out:2 ~k_h:7 ~k_w:7 ~pad:3 ());
      ("rect kernel", Conv.Conv_spec.make ~c_in:2 ~h_in:8 ~w_in:10 ~c_out:2 ~k_h:1 ~k_w:5 ~pad_w:2 ());
      ("batched", Conv.Conv_spec.make ~batch:2 ~c_in:2 ~h_in:6 ~w_in:6 ~c_out:2 ~k_h:3 ~k_w:3 ());
    ]

let test_fft_conv_transform_size () =
  let spec = Conv.Conv_spec.make ~c_in:1 ~h_in:13 ~w_in:13 ~c_out:1 ~k_h:3 ~k_w:3 ~pad:1 () in
  Alcotest.(check (pair int int)) "next pow2 of 15" (16, 16) (Conv.Fft_conv.transform_size spec)

let test_fft_conv_io_large_for_small_kernels () =
  (* FFT convolution moves far more data than the tiled dataflow on 3x3
     kernels — the reason libraries only pick it for large kernels. *)
  let spec = Conv.Conv_spec.make ~c_in:32 ~h_in:28 ~w_in:28 ~c_out:32 ~k_h:3 ~k_w:3 ~pad:1 () in
  let fft_io = Conv.Io_count.total (Conv.Fft_conv.io spec) in
  let tiled_io =
    Conv.Io_count.total
      (Conv.Tiled_direct.io_only spec ~tile:{ Conv.Tiled_direct.x = 7; y = 7; z = 8 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "fft %.3g > tiled %.3g" fft_io tiled_io)
    true (fft_io > tiled_io)

let qcheck_fft_conv_random =
  QCheck.Test.make ~name:"fft conv equals direct on random shapes" ~count:15
    QCheck.(quad (int_range 1 3) (int_range 1 3) (int_range 5 10) (int_range 0 1000))
    (fun (c_in, c_out, size, seed) ->
      let spec = Conv.Conv_spec.make ~c_in ~h_in:size ~w_in:size ~c_out ~k_h:3 ~k_w:3 () in
      let rng = Util.Rng.create seed in
      let input, weights = Conv.Direct.random_problem rng spec in
      let expected = Conv.Direct.run spec ~input ~weights in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-5 expected (Conv.Fft_conv.run spec ~input ~weights))

let () =
  Alcotest.run "fft"
    [
      ( "transform",
        [
          Alcotest.test_case "power of two" `Quick test_power_of_two;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "constant" `Quick test_fft_constant;
          Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_naive_dft;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "Parseval" `Quick test_fft_parseval;
          Alcotest.test_case "rejects bad length" `Quick test_fft_rejects_bad_length;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
          Alcotest.test_case "fft2 roundtrip" `Quick test_fft2_roundtrip;
          Alcotest.test_case "fft2 impulse" `Quick test_fft2_separable_impulse;
          Alcotest.test_case "fft2 matches naive 2D DFT" `Quick test_fft2_matches_naive;
        ] );
      ( "fft_conv",
        [
          Alcotest.test_case "agrees with direct" `Quick test_fft_conv_agrees;
          Alcotest.test_case "transform size" `Quick test_fft_conv_transform_size;
          Alcotest.test_case "io large for small kernels" `Quick
            test_fft_conv_io_large_for_small_kernels;
          QCheck_alcotest.to_alcotest qcheck_fft_conv_random;
        ] );
    ]
