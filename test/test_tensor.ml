(* Tests for the tensor library: shapes and strides, layouts, dense tensor
   accessors, elementwise operations and the matmul kernels. *)

let shape l = Tensor.Shape.of_list l

let test_shape_numel () =
  Alcotest.(check int) "numel" 24 (Tensor.Shape.numel (shape [ 2; 3; 4 ]))

let test_shape_strides () =
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Tensor.Shape.strides (shape [ 2; 3; 4 ]))

let test_shape_offset () =
  let s = shape [ 2; 3; 4 ] in
  Alcotest.(check int) "offset" ((1 * 12) + (2 * 4) + 3) (Tensor.Shape.offset s [| 1; 2; 3 |])

let test_shape_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Shape.of_list: empty shape") (fun () ->
      ignore (shape []));
  Alcotest.check_raises "non-positive" (Invalid_argument "Shape.of_list: non-positive dim")
    (fun () -> ignore (shape [ 2; 0 ]))

let test_shape_equal () =
  Alcotest.(check bool) "equal" true (Tensor.Shape.equal (shape [ 2; 3 ]) (shape [ 2; 3 ]));
  Alcotest.(check bool) "not equal" false (Tensor.Shape.equal (shape [ 2; 3 ]) (shape [ 3; 2 ]))

let test_layout_roundtrip () =
  List.iter
    (fun l ->
      match Tensor.Layout.of_string (Tensor.Layout.to_string l) with
      | Some l' -> Alcotest.(check bool) "roundtrip" true (l = l')
      | None -> Alcotest.fail "roundtrip failed")
    Tensor.Layout.all

let test_layout_bijective () =
  (* Every layout must index each element of a small tensor exactly once. *)
  List.iter
    (fun layout ->
      let channels = 3 and height = 4 and width = 5 in
      let seen = Array.make (channels * height * width) false in
      for c = 0 to channels - 1 do
        for h = 0 to height - 1 do
          for w = 0 to width - 1 do
            let i = Tensor.Layout.index layout ~c ~h ~w ~channels ~height ~width in
            Alcotest.(check bool) "fresh offset" false seen.(i);
            seen.(i) <- true
          done
        done
      done;
      Alcotest.(check bool) "all covered" true (Array.for_all Fun.id seen))
    Tensor.Layout.all

let test_layout_innermost () =
  Alcotest.(check bool) "CHW w-contiguous" true Tensor.Layout.(innermost_is_width CHW);
  Alcotest.(check bool) "HWC not w-contiguous" false Tensor.Layout.(innermost_is_width HWC)

let test_tensor_get_set () =
  let t = Tensor.create (shape [ 2; 3 ]) in
  Tensor.set t [| 1; 2 |] 5.0;
  Alcotest.(check (float 0.0)) "set/get" 5.0 (Tensor.get t [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "flat view" 5.0 (Tensor.get_flat t 5)

let test_tensor_init () =
  let t = Tensor.init (shape [ 2; 2 ]) (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  Alcotest.(check (float 0.0)) "init 00" 0.0 (Tensor.get t [| 0; 0 |]);
  Alcotest.(check (float 0.0)) "init 11" 11.0 (Tensor.get t [| 1; 1 |])

let test_tensor_of_array_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Tensor.of_array: length mismatch")
    (fun () -> ignore (Tensor.of_array (shape [ 2; 2 ]) [| 1.0 |]))

let test_tensor_copy_independent () =
  let t = Tensor.create (shape [ 2 ]) in
  let u = Tensor.copy t in
  Tensor.set_flat u 0 9.0;
  Alcotest.(check (float 0.0)) "copy is independent" 0.0 (Tensor.get_flat t 0)

let test_tensor_random_range () =
  let rng = Util.Rng.create 1 in
  let t = Tensor.random rng (shape [ 100 ]) in
  Alcotest.(check bool) "in [-1,1)" true
    (Tensor.fold (fun acc x -> acc && x >= -1.0 && x < 1.0) true t)

let test_ops_elementwise () =
  let a = Tensor.of_array (shape [ 3 ]) [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array (shape [ 3 ]) [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 0.0)) "add" 9.0 (Tensor.get_flat (Tensor.Ops.add a b) 2);
  Alcotest.(check (float 0.0)) "sub" (-3.0) (Tensor.get_flat (Tensor.Ops.sub a b) 0);
  Alcotest.(check (float 0.0)) "mul" 10.0 (Tensor.get_flat (Tensor.Ops.mul a b) 1);
  Alcotest.(check (float 0.0)) "scale" 6.0 (Tensor.get_flat (Tensor.Ops.scale 2.0 a) 2)

let test_ops_add_inplace () =
  let a = Tensor.of_array (shape [ 2 ]) [| 1.0; 2.0 |] in
  let b = Tensor.of_array (shape [ 2 ]) [| 10.0; 20.0 |] in
  Tensor.Ops.add_inplace ~dst:a b;
  Alcotest.(check (float 0.0)) "accumulated" 22.0 (Tensor.get_flat a 1)

let test_ops_matmul_identity () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let id = [| 1.0; 0.0; 0.0; 1.0 |] in
  let c = Tensor.Ops.matmul ~a ~b:id ~m:2 ~k:2 ~n:2 in
  Alcotest.(check (array (float 0.0))) "A*I = A" a c

let test_ops_matmul_known () =
  (* [[1 2];[3 4]] * [[5 6];[7 8]] = [[19 22];[43 50]] *)
  let a = [| 1.0; 2.0; 3.0; 4.0 |] and b = [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Tensor.Ops.matmul ~a ~b ~m:2 ~k:2 ~n:2 in
  Alcotest.(check (array (float 0.0))) "known product" [| 19.0; 22.0; 43.0; 50.0 |] c

let test_ops_matmul_t_agrees () =
  let rng = Util.Rng.create 2 in
  let m = 3 and k = 4 and n = 5 in
  let a = Array.init (m * k) (fun _ -> Util.Rng.float rng 1.0) in
  let b = Array.init (k * n) (fun _ -> Util.Rng.float rng 1.0) in
  let bt = Tensor.Ops.transpose b ~rows:k ~cols:n in
  let c1 = Tensor.Ops.matmul ~a ~b ~m ~k ~n in
  let c2 = Tensor.Ops.matmul_t ~a ~bt ~m ~k ~n in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-9)) "matmul_t agrees" x c2.(i))
    c1

let test_ops_transpose_involution () =
  let a = Array.init 12 float_of_int in
  let tt = Tensor.Ops.(transpose (transpose a ~rows:3 ~cols:4) ~rows:4 ~cols:3) in
  Alcotest.(check (array (float 0.0))) "transpose^2 = id" a tt

let test_allclose () =
  let a = Tensor.of_array (shape [ 2 ]) [| 1.0; 2.0 |] in
  let b = Tensor.of_array (shape [ 2 ]) [| 1.0 +. 1e-8; 2.0 |] in
  Alcotest.(check bool) "close" true (Tensor.allclose a b);
  let c = Tensor.of_array (shape [ 2 ]) [| 1.5; 2.0 |] in
  Alcotest.(check bool) "far" false (Tensor.allclose a c)

let test_max_abs_diff () =
  let a = Tensor.of_array (shape [ 2 ]) [| 1.0; 5.0 |] in
  let b = Tensor.of_array (shape [ 2 ]) [| 2.0; 3.0 |] in
  Alcotest.(check (float 0.0)) "max abs diff" 2.0 (Tensor.max_abs_diff a b)

let qcheck_matmul_assoc =
  QCheck.Test.make ~name:"matmul is associative (2x2)" ~count:100
    QCheck.(array_of_size (QCheck.Gen.return 12) (float_range (-4.) 4.))
    (fun xs ->
      let a = Array.sub xs 0 4 and b = Array.sub xs 4 4 and c = Array.sub xs 8 4 in
      let mm x y = Tensor.Ops.matmul ~a:x ~b:y ~m:2 ~k:2 ~n:2 in
      let left = mm (mm a b) c and right = mm a (mm b c) in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) left right)

let qcheck_dot_symmetric =
  QCheck.Test.make ~name:"dot is symmetric" ~count:100
    QCheck.(array_of_size (QCheck.Gen.return 16) (float_range (-4.) 4.))
    (fun xs ->
      let a = Array.sub xs 0 8 and b = Array.sub xs 8 8 in
      Float.abs (Tensor.Ops.dot a b -. Tensor.Ops.dot b a) < 1e-9)

let () =
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "numel" `Quick test_shape_numel;
          Alcotest.test_case "strides" `Quick test_shape_strides;
          Alcotest.test_case "offset" `Quick test_shape_offset;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
          Alcotest.test_case "equal" `Quick test_shape_equal;
        ] );
      ( "layout",
        [
          Alcotest.test_case "string roundtrip" `Quick test_layout_roundtrip;
          Alcotest.test_case "bijective indexing" `Quick test_layout_bijective;
          Alcotest.test_case "innermost axis" `Quick test_layout_innermost;
        ] );
      ( "dense",
        [
          Alcotest.test_case "get/set" `Quick test_tensor_get_set;
          Alcotest.test_case "init" `Quick test_tensor_init;
          Alcotest.test_case "of_array mismatch" `Quick test_tensor_of_array_mismatch;
          Alcotest.test_case "copy independence" `Quick test_tensor_copy_independent;
          Alcotest.test_case "random range" `Quick test_tensor_random_range;
          Alcotest.test_case "allclose" `Quick test_allclose;
          Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
        ] );
      ( "ops",
        [
          Alcotest.test_case "elementwise" `Quick test_ops_elementwise;
          Alcotest.test_case "add_inplace" `Quick test_ops_add_inplace;
          Alcotest.test_case "matmul identity" `Quick test_ops_matmul_identity;
          Alcotest.test_case "matmul known" `Quick test_ops_matmul_known;
          Alcotest.test_case "matmul_t agrees" `Quick test_ops_matmul_t_agrees;
          Alcotest.test_case "transpose involution" `Quick test_ops_transpose_involution;
          QCheck_alcotest.to_alcotest qcheck_matmul_assoc;
          QCheck_alcotest.to_alcotest qcheck_dot_symmetric;
        ] );
    ]
