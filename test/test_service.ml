(* Service-layer suite — backs the [@service-smoke] dune alias.

   The tuning daemon's three robustness pillars, exercised through the
   deterministic in-process harness (Service.Sim drives the same Engine the
   socket daemon does):

   - the crash-safe content-addressed result cache: kill -9 (a script that
     ends without Drain) plus injected file corruption still leaves a
     restartable cache, and previously tuned shapes answer with zero
     re-tuning (trials=0, tunes_run unchanged);
   - coalescing + admission: N identical concurrent requests run exactly
     one tuning task and all waiters get the one answer; distinct requests
     beyond max_pending get a typed BUSY;
   - protocol fault handling: every byte the engine emits is a typed
     response line, malformed input never crashes, draining rejects new
     work but finishes queued tunes;
   - answer integrity: semantic corruption the framing CRC endorses
     (mutate-and-reframe) is caught by the Verify.Audit trust boundaries —
     load, hit, post-tune, background scrub — quarantined with typed
     reasons, and the poisoned shapes fall through to fresh tunes.

   SERVICE_DEEP=1 widens the chaos campaign seed sweep and adds the
   real-socket daemon smoke (spawned domain, live Unix socket, idle
   deadline, SIGTERM-equivalent stop/drain, warm restart). *)

let deep = Sys.getenv_opt "SERVICE_DEEP" <> None
let campaign_seeds = List.init (if deep then 16 else 4) (fun i -> i)

(* Salvage warnings from deliberately corrupted caches are expected noise. *)
let () = Util.Log.set_quiet true

(* Small shapes keep a full tune at a few hundred microseconds of model
   evaluation; the smoke suite stays well under the 5s gate. *)
let line_a = "TUNE cin=4 size=8 cout=4 k=3"
let line_b = "TUNE cin=8 size=8 cout=4 k=1"
let line_c = "TUNE cin=4 size=10 cout=8 k=3 arch=1080ti"

let spec_of_line line =
  match Service.Protocol.parse_request line with
  | Ok (Service.Protocol.Tune r) -> r
  | _ -> Alcotest.failf "helper line does not parse: %s" line

let fast =
  {
    Service.Engine.default_settings with
    budget_trials = 16;
    max_pending = 4;
  }

let temp_cache () =
  let path = Filename.temp_file "service" ".cache" in
  Sys.remove path;
  path

(* A run that never tunes never creates the cache file. *)
let cleanup path = if Sys.file_exists path then Sys.remove path

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let parse_ok line =
  match Service.Protocol.parse_response line with
  | Some (Service.Protocol.Result p) -> p
  | _ -> Alcotest.failf "expected an OK response, got: %s" line

(* Rebuild the request's search space and check the answered config is a
   member — the "validated config" half of the chaos property. *)
let assert_config_valid line (r : Service.Protocol.tune_request) =
  let p = parse_ok line in
  match
    Core.Search_space.make ~pruned:r.pruned r.arch r.spec r.algorithm
  with
  | exception Invalid_argument _ -> Alcotest.failf "spec lost its domain: %s" line
  | space ->
    Alcotest.(check bool)
      ("config validates: " ^ line)
      true
      (Core.Search_space.validate space p.config = Ok ())

(* ------------------------------------------------------------------ *)
(* Protocol. *)

let test_request_roundtrip () =
  let r = spec_of_line "TUNE cin=64 cout=32 hin=28 win=28 kh=3 kw=3 stride=2 padh=1 padw=0 batch=2 groups=2 arch=1080ti algo=winograd e=2 pruned=false" in
  let rendered = Service.Protocol.render_tune r in
  (match Service.Protocol.parse_request rendered with
  | Ok (Service.Protocol.Tune r') ->
    Alcotest.(check string) "round-trip preserves the canonical request"
      (Service.Protocol.canonical_of_tune r)
      (Service.Protocol.canonical_of_tune r')
  | _ -> Alcotest.fail "rendered request did not parse back");
  (* Field order is free and elidable defaults do not change the address. *)
  let permuted = spec_of_line "TUNE k=3 size=8 cout=4 cin=4 arch=v100 algo=direct pruned=true" in
  Alcotest.(check string) "permuted + explicit defaults address the same entry"
    (Service.Protocol.canonical_of_tune (spec_of_line line_a))
    (Service.Protocol.canonical_of_tune permuted)

let test_parse_rejects_malformed () =
  let reject line =
    match Service.Protocol.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for: %s" line
  in
  List.iter reject
    [
      "";
      "FROBNICATE";
      "TUNE";
      "TUNE cin=4";  (* missing cout/size/k *)
      "TUNE cin=4 size=8 cout=4 k=3 cin=5";  (* duplicate field *)
      "TUNE cin=banana size=8 cout=4 k=3";
      "TUNE cin=4 size=8 cout=4 k=3 deadline-ms=-5";  (* bad known value *)
      "TUNE cin=-4 size=8 cout=4 k=3";  (* spec-level rejection *)
      "TUNE cin=4 size=8 cout=4 k=3 algo=quantum";
      "TUNE cin=4 size=8 cout=4 k=3 arch=abacus";
      "TUNE cin=4 size=8\tcout=4 k=3";  (* control char *)
      "TUNE cin=4 size=8 cout=4 k=3 " ^ String.make Service.Protocol.max_line_bytes 'x';
    ];
  Alcotest.(check bool) "garbage is not a typed response line" false
    (Service.Protocol.is_typed_line "how about no")

(* The forward-compatibility rule: unknown key=value fields are ignored (the
   mechanism that let deadline-ms ship without breaking older daemons), and
   the ignored fields never perturb the cache address. *)
let test_parse_ignores_unknown_fields () =
  let with_unknown = spec_of_line (line_a ^ " mystery=1 future-proof=yes") in
  Alcotest.(check string) "unknown fields do not change the address"
    (Service.Protocol.canonical_of_tune (spec_of_line line_a))
    (Service.Protocol.canonical_of_tune with_unknown);
  (* deadline-ms is a known serving-side field: parsed, never addressed. *)
  let with_deadline = spec_of_line (line_a ^ " deadline-ms=5000") in
  Alcotest.(check (option int)) "deadline-ms parsed"
    (Some 5000) with_deadline.deadline_ms;
  Alcotest.(check string) "deadline-ms does not change the address"
    (Service.Protocol.canonical_of_tune (spec_of_line line_a))
    (Service.Protocol.canonical_of_tune with_deadline)

let test_response_roundtrip () =
  let space =
    let r = spec_of_line line_a in
    Core.Search_space.make r.arch r.spec r.algorithm
  in
  let config, _ = Core.Supervisor.analytic_best space in
  let payload =
    {
      Service.Protocol.key = Service.Result_cache.key_of_canonical "x";
      source = Service.Protocol.Src_tuned;
      runtime_us = 123.456789;
      gflops = 7.25;
      trials = 42;
      config;
    }
  in
  let roundtrip resp =
    let line = Service.Protocol.render_response resp in
    Alcotest.(check bool) ("typed: " ^ line) true (Service.Protocol.is_typed_line line);
    match Service.Protocol.parse_response line with
    | Some resp' ->
      Alcotest.(check string) ("round-trip: " ^ line) line
        (Service.Protocol.render_response resp')
    | None -> Alcotest.failf "rendered response did not parse back: %s" line
  in
  List.iter roundtrip
    [
      Service.Protocol.Result payload;
      Service.Protocol.Result
        { payload with source = Service.Protocol.Src_cached; trials = 0 };
      Service.Protocol.Busy { retry_after_s = 3 };
      Service.Protocol.Pong;
      Service.Protocol.Stats_reply [ ("hits", "4"); ("draining", "false") ];
      Service.Protocol.Error (Service.Protocol.Parse "unknown field 'mystery'");
      Service.Protocol.Error (Service.Protocol.Domain "winograd unsupported");
      Service.Protocol.Error (Service.Protocol.Failed "breaker open");
      Service.Protocol.Error (Service.Protocol.Parse "");  (* empty payload *)
      Service.Protocol.Error Service.Protocol.Draining;
      Service.Protocol.Error Service.Protocol.Timeout;
      Service.Protocol.Error Service.Protocol.Deadline;
      Service.Protocol.Busy { retry_after_s = 0 };
    ]

(* ------------------------------------------------------------------ *)
(* Result cache. *)

let sample_entry canonical =
  let r = spec_of_line line_a in
  let space = Core.Search_space.make r.arch r.spec r.algorithm in
  let config, runtime_us = Core.Supervisor.analytic_best space in
  {
    Service.Result_cache.key = Service.Result_cache.key_of_canonical canonical;
    canonical;
    source = Service.Protocol.Src_tuned;
    runtime_us;
    gflops = 3.25;
    predicted_us = runtime_us;
    trials = 16;
    config;
  }

let test_cache_roundtrip_persists () =
  let path = temp_cache () in
  let cache = Service.Result_cache.load ~generation:"g1" path in
  Alcotest.(check int) "fresh cache empty" 0 (Service.Result_cache.entries cache);
  let e = sample_entry "spec-one" in
  Service.Result_cache.put cache e;
  (* A second process (or a restart after kill -9) sees the append. *)
  let cache' = Service.Result_cache.load ~generation:"g1" path in
  (match Service.Result_cache.find cache' ~canonical:"spec-one" with
  | Some e' ->
    Alcotest.(check string) "key survives" e.key e'.key;
    Alcotest.(check bool) "runtime bit-identical" true (e.runtime_us = e'.runtime_us);
    Alcotest.(check string) "config survives"
      (Core.Config.to_compact e.config)
      (Core.Config.to_compact e'.config)
  | None -> Alcotest.fail "entry lost across reload");
  Alcotest.(check bool) "unknown canonical misses" true
    (Service.Result_cache.find cache' ~canonical:"spec-two" = None);
  Service.Result_cache.flush cache';
  let cache'' = Service.Result_cache.load ~generation:"g1" path in
  Alcotest.(check int) "flush keeps the live entry" 1
    (Service.Result_cache.entries cache'');
  Sys.remove path

let test_cache_generation_invalidation () =
  let path = temp_cache () in
  let old = Service.Result_cache.load ~generation:"trials=16;seed=0" path in
  Service.Result_cache.put old (sample_entry "spec-one");
  (* The operator changed the search settings: old answers are stale. *)
  let fresh = Service.Result_cache.load ~generation:"trials=64;seed=0" path in
  Alcotest.(check int) "stale records counted" 1 (Service.Result_cache.stale fresh);
  Alcotest.(check int) "no live entries" 0 (Service.Result_cache.entries fresh);
  Alcotest.(check bool) "stale entry not served" true
    (Service.Result_cache.find fresh ~canonical:"spec-one" = None);
  Service.Result_cache.flush fresh;
  (* The compaction removed the stale generation for good. *)
  let back = Service.Result_cache.load ~generation:"trials=16;seed=0" path in
  Alcotest.(check int) "flush dropped the stale record" 0
    (Service.Result_cache.stale back + Service.Result_cache.entries back);
  Sys.remove path

let test_cache_rejects_forged_key () =
  (* A record whose key does not hash its canonical (disk tampering, or a
     genuine FNV collision) must be ignored, never served. *)
  let path = temp_cache () in
  let cache = Service.Result_cache.load ~generation:"g1" path in
  let e = sample_entry "spec-one" in
  Service.Result_cache.put cache e;
  let forged =
    Printf.sprintf "v2\tg1\t%s\t%s\t%h\t%h\t%h\t%d\t%s\t%s"
      (Service.Result_cache.key_of_canonical "some-other-spec")
      "tuned" 1.0 1.0 1.0 5
      (Core.Config.to_compact e.config)
      "spec-forged"
  in
  Util.Durable.append ~kind:"service-cache" path forged;
  let cache' = Service.Result_cache.load ~generation:"g1" path in
  Alcotest.(check int) "only the honest entry is live" 1
    (Service.Result_cache.entries cache');
  Alcotest.(check bool) "forged canonical not served" true
    (Service.Result_cache.find cache' ~canonical:"spec-forged" = None);
  Sys.remove path

let test_cache_corruption_salvage () =
  let rounds = if deep then 200 else 25 in
  let canonicals = [ "alpha"; "beta"; "gamma" ] in
  for seed = 0 to rounds - 1 do
    let path = temp_cache () in
    let cache = Service.Result_cache.load ~generation:"g1" path in
    let originals =
      List.map
        (fun c ->
          let e = { (sample_entry c) with runtime_us = float_of_int (String.length c) } in
          Service.Result_cache.put cache e;
          e)
        canonicals
    in
    let rng = Util.Rng.create seed in
    for _ = 0 to Util.Rng.int rng 3 do
      ignore (Util.Fs_faults.inject rng path)
    done;
    (* Salvage must never raise, never serve a damaged record, and every
       record it does serve must be bit-identical to what was written. *)
    let salvaged = Service.Result_cache.load ~generation:"g1" path in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: entries within bounds" seed)
      true
      (Service.Result_cache.entries salvaged <= List.length canonicals);
    List.iter
      (fun (e : Service.Result_cache.entry) ->
        match Service.Result_cache.find salvaged ~canonical:e.canonical with
        | None -> () (* lost to corruption: reported via [dropped]/[stale] *)
        | Some e' ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: %s survives bit-identically" seed e.canonical)
            true
            (e'.runtime_us = e.runtime_us && e'.key = e.key
            && Core.Config.to_compact e'.config = Core.Config.to_compact e.config))
      originals;
    (* The salvage repaired the file in place: a second load is clean. *)
    let again = Service.Result_cache.load ~generation:"g1" path in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: repair leaves nothing more to drop" seed)
      0
      (Service.Result_cache.dropped again);
    Sys.remove path
  done

(* ------------------------------------------------------------------ *)
(* Engine (through the Sim harness). *)

let run_sim ?(settings = fast) ~cache events = Service.Sim.run ~settings ~cache events

let counters outcome = Service.Engine.counters outcome.Service.Sim.engine

let test_tune_then_cached () =
  let cache = temp_cache () in
  let outcome =
    run_sim ~cache
      Service.Sim.
        [ Connect 1; Send (1, line_a); Run_until_idle; Send (1, line_a); Run_until_idle ]
  in
  (match Service.Sim.transcript_of 1 outcome with
  | [ first; second ] ->
    let p1 = parse_ok first and p2 = parse_ok second in
    Alcotest.(check string) "first answer is a live tune" "tuned"
      (Service.Protocol.source_to_string p1.source);
    Alcotest.(check bool) "live tune measured" true (p1.trials > 0);
    Alcotest.(check string) "repeat served from cache" "cached"
      (Service.Protocol.source_to_string p2.source);
    Alcotest.(check int) "cache hit measures nothing" 0 p2.trials;
    Alcotest.(check string) "same key" p1.key p2.key;
    Alcotest.(check string) "same config"
      (Core.Config.to_compact p1.config)
      (Core.Config.to_compact p2.config);
    assert_config_valid first (spec_of_line line_a)
  | t -> Alcotest.failf "expected two responses, got %d" (List.length t));
  let c = counters outcome in
  Alcotest.(check int) "one tune ran" 1 c.tunes_run;
  Alcotest.(check int) "one hit" 1 c.cache_hits;
  Alcotest.(check int) "one miss" 1 c.cache_misses;
  cleanup cache

let test_identical_requests_coalesce () =
  let cache = temp_cache () in
  let n = 4 in
  let connects = List.init n (fun i -> Service.Sim.Connect i) in
  let sends = List.init n (fun i -> Service.Sim.Send (i, line_a)) in
  let outcome = run_sim ~cache (connects @ sends @ [ Service.Sim.Run_until_idle ]) in
  let c = counters outcome in
  Alcotest.(check int) "exactly one tuning task for N identical requests" 1 c.tunes_run;
  Alcotest.(check int) "the other N-1 joined it" (n - 1) c.coalesced;
  Alcotest.(check int) "nobody bounced" 0 c.busy_rejected;
  let lines =
    List.init n (fun i ->
        match Service.Sim.transcript_of i outcome with
        | [ line ] -> line
        | t -> Alcotest.failf "client %d: expected one response, got %d" i (List.length t))
  in
  (* One shared answer, delivered to every waiter. *)
  List.iter
    (fun line -> Alcotest.(check string) "shared answer" (List.hd lines) line)
    lines;
  assert_config_valid (List.hd lines) (spec_of_line line_a);
  cleanup cache

let test_admission_control_busy () =
  let cache = temp_cache () in
  let settings = { fast with max_pending = 1; retry_after_s = 7 } in
  let outcome =
    run_sim ~settings ~cache
      Service.Sim.
        [
          Connect 1; Connect 2; Connect 3;
          Send (1, line_a); Send (2, line_b); Send (3, line_c);
          Run_until_idle;
        ]
  in
  let c = counters outcome in
  Alcotest.(check int) "beyond max_pending rejected" 2 c.busy_rejected;
  Alcotest.(check int) "admitted tune ran" 1 c.tunes_run;
  ignore (parse_ok (List.hd (Service.Sim.transcript_of 1 outcome)));
  List.iter
    (fun i ->
      match Service.Sim.transcript_of i outcome with
      | [ line ] -> (
        match Service.Protocol.parse_response line with
        | Some (Service.Protocol.Busy { retry_after_s }) ->
          Alcotest.(check int) "retry hint from settings" 7 retry_after_s
        | _ -> Alcotest.failf "client %d: expected BUSY, got %s" i line)
      | t -> Alcotest.failf "client %d: expected one response, got %d" i (List.length t))
    [ 2; 3 ];
  cleanup cache

let test_disconnect_still_tunes_and_caches () =
  let cache = temp_cache () in
  let outcome =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1; Send (1, line_a); Disconnect 1; Run_until_idle;
          Connect 2; Send (2, line_a); Run_until_idle;
        ]
  in
  Alcotest.(check (list string)) "the vanished client hears nothing" []
    (Service.Sim.transcript_of 1 outcome);
  let c = counters outcome in
  Alcotest.(check int) "its response counted abandoned" 1 c.abandoned;
  Alcotest.(check int) "the tune still ran once" 1 c.tunes_run;
  (* The abandoned tune's work was cached, so the next client hits. *)
  let p = parse_ok (List.hd (Service.Sim.transcript_of 2 outcome)) in
  Alcotest.(check string) "second client served from cache" "cached"
    (Service.Protocol.source_to_string p.source);
  cleanup cache

let test_drain_finishes_then_rejects () =
  let cache = temp_cache () in
  let outcome =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1; Send (1, line_a);
          Drain;  (* queued tune finishes and answers *)
          Send (1, line_b); Run_until_idle;  (* new work after drain: rejected *)
          Drain;  (* idempotent *)
        ]
  in
  (match Service.Sim.transcript_of 1 outcome with
  | [ first; second ] ->
    ignore (parse_ok first);
    (match Service.Protocol.parse_response second with
    | Some (Service.Protocol.Error Service.Protocol.Draining) -> ()
    | _ -> Alcotest.failf "expected ERR draining, got %s" second)
  | t -> Alcotest.failf "expected two responses, got %d" (List.length t));
  Alcotest.(check bool) "engine reports draining" true
    (Service.Engine.is_draining outcome.engine);
  (* Drain flushed atomically: the file reloads clean with the tuned entry. *)
  let reloaded =
    Service.Result_cache.load
      ~generation:(Service.Engine.generation_of_settings fast)
      cache
  in
  Alcotest.(check int) "drained cache holds the finished tune" 1
    (Service.Result_cache.entries reloaded);
  Alcotest.(check int) "compacted: no salvage loss" 0
    (Service.Result_cache.dropped reloaded);
  cleanup cache

let test_protocol_lines_through_engine () =
  let cache = temp_cache () in
  let outcome =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1;
          Send (1, "PING");
          Send (1, "TUNE cin=banana");
          Send (1, "STATS");
          Run_until_idle;
        ]
  in
  (match Service.Sim.transcript_of 1 outcome with
  | [ pong; err; stats ] ->
    Alcotest.(check string) "ping" "PONG" pong;
    (match Service.Protocol.parse_response err with
    | Some (Service.Protocol.Error (Service.Protocol.Parse _)) -> ()
    | _ -> Alcotest.failf "expected ERR parse, got %s" err);
    (match Service.Protocol.parse_response stats with
    | Some (Service.Protocol.Stats_reply kvs) ->
      Alcotest.(check (option string)) "stats count the parse error" (Some "1")
        (List.assoc_opt "parse_errors" kvs)
    | _ -> Alcotest.failf "expected STATS, got %s" stats)
  | t -> Alcotest.failf "expected three responses, got %d" (List.length t));
  Alcotest.(check int) "parse error counted" 1 (counters outcome).parse_errors;
  cleanup cache

let test_sim_deterministic () =
  let script =
    Service.Sim.
      [
        Connect 1; Connect 2;
        Send (1, line_a); Send (2, line_a); Send (2, "PING");
        Step; Send (1, line_b); Run_until_idle; Drain;
      ]
  in
  let c1 = temp_cache () and c2 = temp_cache () in
  let o1 = run_sim ~cache:c1 script and o2 = run_sim ~cache:c2 script in
  Alcotest.(check (list (pair int string))) "scripted runs are byte-identical"
    o1.responses o2.responses;
  Sys.remove c1;
  Sys.remove c2

(* The tentpole crash property: a daemon killed without drain (script ends,
   no Drain event), its cache then corrupted on disk, restarts into a
   salvaged cache and serves every shape it had already tuned with zero
   re-tuning. *)
let test_kill9_corrupt_restart_warm () =
  let cache = temp_cache () in
  let first =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1;
          Send (1, line_a); Run_until_idle;
          Send (1, line_b); Run_until_idle;
          (* no Drain: kill -9 *)
        ]
  in
  Alcotest.(check int) "two tunes before the crash" 2 (counters first).tunes_run;
  (* Half-finished foreign writer scribbles on the file. *)
  Util.Fs_faults.apply cache (Util.Fs_faults.Garbage_append "partial write \x01\x02");
  let second =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1;
          Send (1, line_a); Send (1, line_b);
          Run_until_idle;
        ]
  in
  let c = counters second in
  Alcotest.(check int) "restart re-tunes nothing" 0 c.tunes_run;
  Alcotest.(check int) "both answered from the salvaged cache" 2 c.cache_hits;
  List.iter
    (fun line ->
      let p = parse_ok line in
      Alcotest.(check string) "served from cache" "cached"
        (Service.Protocol.source_to_string p.source);
      Alcotest.(check int) "zero trials" 0 p.trials)
    (Service.Sim.transcript_of 1 second);
  cleanup cache

let test_settings_change_invalidates_cache () =
  let cache = temp_cache () in
  let first =
    run_sim ~cache Service.Sim.[ Connect 1; Send (1, line_a); Run_until_idle; Drain ]
  in
  Alcotest.(check int) "tuned once" 1 (counters first).tunes_run;
  (* A bigger trial budget means better answers: stale cache must not mask
     them. *)
  let second =
    run_sim
      ~settings:{ fast with budget_trials = 24 }
      ~cache
      Service.Sim.[ Connect 1; Send (1, line_a); Run_until_idle ]
  in
  let c = counters second in
  Alcotest.(check int) "changed settings force a fresh tune" 1 c.tunes_run;
  Alcotest.(check int) "no hit from the stale generation" 0 c.cache_hits;
  Alcotest.(check int) "the stale record was recognized" 1
    (Service.Result_cache.stale (Service.Engine.cache second.engine));
  let p = parse_ok (List.hd (Service.Sim.transcript_of 1 second)) in
  Alcotest.(check string) "fresh live tune" "tuned"
    (Service.Protocol.source_to_string p.source);
  cleanup cache

let test_degraded_not_cached () =
  let cache = temp_cache () in
  (* Zero virtual-time budget: the supervisor degrades every tune to the
     analytic answer.  Degraded answers are served typed but never cached —
     a restarted daemon with a fresh budget must tune properly. *)
  let settings =
    {
      fast with
      policy = { Core.Supervisor.default_policy with budget_us = 0.0 };
    }
  in
  let outcome =
    run_sim ~settings ~cache
      Service.Sim.
        [ Connect 1; Send (1, line_a); Run_until_idle; Send (1, line_a); Run_until_idle ]
  in
  (match Service.Sim.transcript_of 1 outcome with
  | [ first; second ] ->
    List.iter
      (fun line ->
        let p = parse_ok line in
        Alcotest.(check string) "typed as degraded" "degraded"
          (Service.Protocol.source_to_string p.source);
        assert_config_valid line (spec_of_line line_a))
      [ first; second ]
  | t -> Alcotest.failf "expected two responses, got %d" (List.length t));
  Alcotest.(check int) "degraded answers never enter the cache" 0
    (Service.Result_cache.entries (Service.Engine.cache outcome.engine));
  Alcotest.(check int) "so the repeat tuned again" 2 (counters outcome).tunes_run;
  cleanup cache

let test_domain_error_typed () =
  let cache = temp_cache () in
  (* Winograd on a strided layer: Search_space.make rejects the domain. *)
  let outcome =
    run_sim ~cache
      Service.Sim.
        [
          Connect 1;
          Send (1, "TUNE cin=4 size=8 cout=4 k=3 stride=2 algo=winograd e=2");
          Run_until_idle;
        ]
  in
  (match Service.Sim.transcript_of 1 outcome with
  | [ line ] -> (
    match Service.Protocol.parse_response line with
    | Some (Service.Protocol.Error (Service.Protocol.Domain _)) -> ()
    | _ -> Alcotest.failf "expected ERR domain, got %s" line)
  | t -> Alcotest.failf "expected one response, got %d" (List.length t));
  Alcotest.(check int) "counted" 1 (counters outcome).domain_errors;
  (* The dead-end surfaces in the supervision health report too. *)
  let report = Service.Engine.health outcome.engine in
  Alcotest.(check int) "reported to the supervisor" 1
    (List.length report.Core.Supervisor.tasks);
  cleanup cache

(* ------------------------------------------------------------------ *)
(* Seeded chaos campaign: scripted clients, injected GPU faults, kill -9,
   file corruption, restart.  The contract, per seed:
   - every emitted line is a typed response;
   - every OK response carries a config valid for its request's space;
   - after the crash + corruption + restart, shapes still present in the
     salvaged cache answer with zero re-tuning (trials=0), and the restart
     runs exactly one tune per shape the salvage lost. *)

let chaos_campaign seed =
  let cache = temp_cache () in
  let journals = temp_dir "service-journals" in
  let rng = Util.Rng.create (1000 + seed) in
  let settings =
    {
      fast with
      seed;
      journal_dir = Some journals;
      max_pending = 2 + Util.Rng.int rng 3;
      faults = (if seed mod 2 = 1 then Some Gpu_sim.Faults.default else None);
    }
  in
  let lines = [| line_a; line_b; line_c |] in
  let requests = Array.map spec_of_line lines in
  (* Phase 1: three clients, randomized interleaving of good requests,
     garbage, PING, a disconnect; ends without drain (kill -9). *)
  let script = ref Service.Sim.[ Connect 0; Connect 1; Connect 2 ] in
  let add e = script := !script @ [ e ] in
  for _ = 1 to 8 + Util.Rng.int rng 8 do
    let client = Util.Rng.int rng 3 in
    match Util.Rng.int rng 6 with
    | 0 -> add (Service.Sim.Send (client, "PING"))
    | 1 -> add (Service.Sim.Send (client, "definitely not a request"))
    | 2 | 3 -> add (Service.Sim.Send (client, lines.(Util.Rng.int rng 3)))
    | 4 -> add Service.Sim.Step
    | _ -> add Service.Sim.Run_until_idle
  done;
  add (Service.Sim.Send (2, lines.(Util.Rng.int rng 3)));
  add (Service.Sim.Disconnect 2);
  add Service.Sim.Run_until_idle;
  let phase1 = run_sim ~settings ~cache !script in
  List.iter
    (fun (_, line) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: typed line %s" seed line)
        true
        (Service.Protocol.is_typed_line line))
    phase1.responses;
  let c1 = counters phase1 in
  (* Coalescing bound: without GPU faults every tuned shape is cached, so
     repeats never re-tune.  (Under faults a breaker-degraded answer is
     deliberately not cached, so a later repeat may legitimately tune
     again.) *)
  if settings.faults = None then
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: at most one tune per distinct shape" seed)
      true
      (c1.tunes_run <= Array.length lines);
  (* kill -9, then the disk takes damage. *)
  for _ = 0 to Util.Rng.int rng 2 do
    ignore (Util.Fs_faults.inject rng cache)
  done;
  (* What did the salvage keep?  (Inspect with an independent load so the
     restart assertions below are exact, not probabilistic.) *)
  let generation = Service.Engine.generation_of_settings settings in
  let salvaged = Service.Result_cache.load ~generation cache in
  let kept r =
    Service.Result_cache.find salvaged
      ~canonical:(Service.Protocol.canonical_of_tune r)
    <> None
  in
  let n_kept = Array.to_list requests |> List.filter kept |> List.length in
  (* Phase 2: restart, one client re-asks every shape, graceful drain.
     Admission bounds are a serving-side knob — raising max_pending across
     the restart must NOT invalidate the cache (same generation). *)
  let settings = { settings with max_pending = Array.length lines } in
  let phase2 =
    run_sim ~settings ~cache
      (Service.Sim.Connect 0
      :: (Array.to_list lines |> List.map (fun l -> Service.Sim.Send (0, l)))
      @ [ Service.Sim.Run_until_idle; Service.Sim.Drain ])
  in
  let c2 = counters phase2 in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: salvaged shapes answer without re-tuning" seed)
    n_kept c2.cache_hits;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: exactly one tune per lost shape" seed)
    (Array.length lines - n_kept)
    c2.tunes_run;
  (* Responses arrive hits-first, then one tune per step — not in request
     order.  Match each response back to its request by content hash. *)
  let by_key =
    Array.to_list requests
    |> List.map (fun r ->
           ( Service.Result_cache.key_of_canonical
               (Service.Protocol.canonical_of_tune r),
             r ))
  in
  let cacheable = ref 0 in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: restart line typed" seed)
        true
        (Service.Protocol.is_typed_line line);
      let p = parse_ok line in
      let r =
        match List.assoc_opt p.Service.Protocol.key by_key with
        | Some r -> r
        | None -> Alcotest.failf "seed %d: unknown key in %s" seed line
      in
      (match p.source with
      | Service.Protocol.Src_cached ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: cache hit was salvaged" seed)
          true (kept r);
        Alcotest.(check int)
          (Printf.sprintf "seed %d: cache hit measured nothing" seed)
          0 p.trials
      | Service.Protocol.Src_tuned | Service.Protocol.Src_replayed ->
        incr cacheable
      | Service.Protocol.Src_degraded -> () (* typed, truthful, not cached *));
      assert_config_valid line r)
    (Service.Sim.transcript_of 0 phase2);
  (* The drain compacted the cache: a final load is clean and holds exactly
     the salvaged entries plus the restart's cacheable tunes. *)
  let final = Service.Result_cache.load ~generation cache in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: drained cache clean" seed)
    0
    (Service.Result_cache.dropped final + Service.Result_cache.stale final);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: drained cache complete" seed)
    (n_kept + !cacheable)
    (Service.Result_cache.entries final);
  cleanup cache;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  rm_rf journals

let test_chaos_campaign () = List.iter chaos_campaign campaign_seeds

(* ------------------------------------------------------------------ *)
(* Semantic-corruption campaign (the audit tentpole): poisoned records
   whose framing CRC is VALID — [Util.Fs_faults.Semantic_flip] mutates the
   payload and re-frames it, the lie [Util.Durable] cannot see.  The
   contract, per seed:
   - the poisoned file still reads [Intact] (the checksum endorses it);
   - the restarted daemon serves ZERO corrupt answers — every answer is
     bit-identical to the honest pre-corruption tune for its key;
   - every poisoned record lands in the quarantine ledger with its typed
     reason, and STATS reports the exact ledger;
   - the shapes the audit condemned fall through to fresh tunes;
   - after the dust settles the file on disk reloads clean and a full
     scrub pass finds nothing further. *)

let semantic_campaign seed =
  let cache = temp_cache () in
  let rng = Util.Rng.create (2000 + seed) in
  let settings = { fast with seed } in
  let generation = Service.Engine.generation_of_settings settings in
  let lines = [| line_a; line_b; line_c |] in
  let ask_all =
    Service.Sim.Connect 0
    :: (Array.to_list lines |> List.map (fun l -> Service.Sim.Send (0, l)))
  in
  (* Phase 1: tune every shape, graceful drain -> compacted snapshot. *)
  let phase1 =
    run_sim ~settings ~cache
      (ask_all @ [ Service.Sim.Run_until_idle; Service.Sim.Drain ])
  in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: every shape tuned live" seed)
    (Array.length lines)
    (counters phase1).tunes_run;
  (* The honest answers, by content key: the ground truth the restart must
     reproduce bit for bit. *)
  let honest =
    List.map
      (fun line ->
        let p = parse_ok line in
        (p.Service.Protocol.key, p))
      (Service.Sim.transcript_of 0 phase1)
  in
  (* Poison >= 10% (here 33-100%) of the entries: flip one bit inside the
     content-key field of [n_corrupt] records and re-frame each with a
     fresh, VALID checksum.  A hex digit can never bit-flip into a field
     separator, so the record still decodes — into a lie only the auditor's
     key = hash(canonical) invariant can catch. *)
  let n_corrupt = 1 + (seed mod Array.length lines) in
  for record = 0 to n_corrupt - 1 do
    let offset = 4 + String.length generation + Util.Rng.int rng 16 in
    let bit = Util.Rng.int rng 8 in
    Util.Fs_faults.apply cache
      (Util.Fs_faults.Semantic_flip { record; offset; bit })
  done;
  (match Util.Durable.read ~kind:"service-cache" cache with
  | Util.Durable.Intact payloads ->
    Alcotest.(check int)
      (Printf.sprintf "seed %d: the CRC blesses the poisoned file" seed)
      (Array.length lines) (List.length payloads)
  | _ ->
    Alcotest.failf "seed %d: semantic corruption tripped the framing CRC" seed);
  (* Phase 2: warm restart with auditing on (the default), re-ask every
     shape, then pull STATS. *)
  let phase2 =
    run_sim ~settings ~cache
      (ask_all
      @ [
          Service.Sim.Run_until_idle;
          Service.Sim.Send (0, "STATS");
          Service.Sim.Run_until_idle;
          Service.Sim.Drain;
        ])
  in
  let c2 = counters phase2 in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: surviving shapes answer from cache" seed)
    (Array.length lines - n_corrupt)
    c2.cache_hits;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: one fresh tune per poisoned shape" seed)
    n_corrupt c2.tunes_run;
  let answers, stats_line =
    match List.rev (Service.Sim.transcript_of 0 phase2) with
    | stats :: rev_answers -> (List.rev rev_answers, stats)
    | [] -> Alcotest.failf "seed %d: empty restart transcript" seed
  in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: every shape answered" seed)
    (Array.length lines) (List.length answers);
  (* Zero corrupt answers: whether it hit or re-tuned, every served line is
     bit-identical to the honest pre-corruption result for its key. *)
  List.iter
    (fun line ->
      let p = parse_ok line in
      let h =
        match List.assoc_opt p.Service.Protocol.key honest with
        | Some h -> h
        | None -> Alcotest.failf "seed %d: unknown key in %s" seed line
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: runtime matches the honest tune" seed)
        true
        (p.Service.Protocol.runtime_us = h.Service.Protocol.runtime_us);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: config matches the honest tune" seed)
        (Core.Config.to_compact h.Service.Protocol.config)
        (Core.Config.to_compact p.Service.Protocol.config))
    answers;
  (* The ledger holds exactly the poisoned records, each with the typed
     reason the key invariant produces. *)
  let ledger = Service.Quarantine.read (Service.Quarantine.path_for cache) in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: exact quarantine ledger" seed)
    n_corrupt (List.length ledger);
  List.iter
    (fun (r : Service.Quarantine.record) ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: typed quarantine reason" seed)
        "key-mismatch" r.reason)
    ledger;
  (* STATS exposes the same ledger (and the reply round-trips). *)
  (match Service.Protocol.parse_response stats_line with
  | Some (Service.Protocol.Stats_reply kvs as resp) ->
    Alcotest.(check string)
      (Printf.sprintf "seed %d: stats reply round-trips" seed)
      stats_line
      (Service.Protocol.render_response resp);
    Alcotest.(check (option string))
      (Printf.sprintf "seed %d: stats count the quarantined records" seed)
      (Some (string_of_int n_corrupt))
      (List.assoc_opt "quarantined" kvs);
    Alcotest.(check (option string))
      (Printf.sprintf "seed %d: no post-tune rejects" seed)
      (Some "0")
      (List.assoc_opt "audit_rejected" kvs);
    let audited =
      match Option.bind (List.assoc_opt "audited" kvs) int_of_string_opt with
      | Some n -> n
      | None -> Alcotest.failf "seed %d: STATS lacks audited: %s" seed stats_line
    in
    (* Load admits 3 - n_corrupt live records (each audited), every hit
       re-audits, and every fresh tune is audited before caching. *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: audits at every trust boundary" seed)
      true
      (audited >= (2 * (Array.length lines - n_corrupt)) + n_corrupt)
  | _ -> Alcotest.failf "seed %d: expected STATS, got %s" seed stats_line);
  (* The daemon healed the cache: a fresh audited load is clean and at full
     strength, and a full scrub pass condemns nothing further, leaving an
     [Intact] snapshot on disk. *)
  let final = Service.Result_cache.load ~audit:true ~generation cache in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: cache healed to full strength" seed)
    (Array.length lines)
    (Service.Result_cache.entries final);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: nothing further quarantined" seed)
    0
    (Service.Result_cache.quarantined final);
  let report = Service.Result_cache.scrub final in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: scrub examined everything" seed)
    (Array.length lines)
    report.Service.Result_cache.examined;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: scrub pass finds nothing" seed)
    0 report.Service.Result_cache.quarantined;
  (match Util.Durable.read ~kind:"service-cache" cache with
  | Util.Durable.Intact _ -> ()
  | _ -> Alcotest.failf "seed %d: post-scrub file not Intact" seed);
  cleanup (Service.Quarantine.path_for cache);
  cleanup cache

let test_semantic_campaign () = List.iter semantic_campaign campaign_seeds

(* The background scrubber: a daemon whose operator disabled load/hit
   auditing still sweeps its cache one entry per tick, condemns a poisoned
   record mid-flight, and the next request for that shape tunes fresh
   instead of serving the lie. *)
let test_background_scrub () =
  let cache = temp_cache () in
  let settings = { fast with audit = false } in
  let generation = Service.Engine.generation_of_settings settings in
  let first =
    run_sim ~settings ~cache
      Service.Sim.
        [ Connect 1; Send (1, line_a); Send (1, line_b); Run_until_idle; Drain ]
  in
  Alcotest.(check int) "two honest tunes" 2 (counters first).tunes_run;
  let honest =
    (parse_ok (List.hd (Service.Sim.transcript_of 1 first)))
      .Service.Protocol.runtime_us
  in
  (* Poison line_a's record in place: same key, runtime inflated 8x.  The
     un-audited load admits it without complaint. *)
  let plain = Service.Result_cache.load ~generation cache in
  let canonical = Service.Protocol.canonical_of_tune (spec_of_line line_a) in
  (match Service.Result_cache.find plain ~canonical with
  | Some e ->
    Service.Result_cache.put plain
      { e with Service.Result_cache.runtime_us = e.runtime_us *. 8.0 }
  | None -> Alcotest.fail "tuned entry missing from the drained cache");
  let second =
    run_sim
      ~settings:{ settings with scrub_per_step = 1 }
      ~cache
      Service.Sim.[ Connect 1; Step; Step; Send (1, line_a); Run_until_idle ]
  in
  let c = counters second in
  Alcotest.(check int) "poisoned shape re-tuned" 1 c.tunes_run;
  Alcotest.(check int) "the lie never served" 0 c.cache_hits;
  let sc = Service.Engine.cache second.engine in
  Alcotest.(check bool) "sweep covered the cache" true
    (Service.Result_cache.scrubbed sc >= 2);
  Alcotest.(check int) "one record condemned" 1
    (Service.Result_cache.quarantined sc);
  (match Service.Quarantine.read (Service.Result_cache.quarantine_path sc) with
  | [ r ] ->
    Alcotest.(check bool) "typed runtime reason" true
      (String.split_on_char ',' r.Service.Quarantine.reason
      |> List.mem "runtime-implausible")
  | l -> Alcotest.failf "expected one ledger record, got %d" (List.length l));
  let p = parse_ok (List.hd (Service.Sim.transcript_of 1 second)) in
  Alcotest.(check string) "fresh live tune" "tuned"
    (Service.Protocol.source_to_string p.source);
  Alcotest.(check bool) "honest runtime restored" true
    (p.Service.Protocol.runtime_us = honest);
  cleanup (Service.Result_cache.quarantine_path sc);
  cleanup cache

(* ------------------------------------------------------------------ *)
(* Real socket smoke (SERVICE_DEEP): the daemon in a spawned domain, live
   Unix-domain socket, idle deadline, stop/drain, warm restart. *)

let connect_client socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec attempt tries =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
      Unix.sleepf 0.05;
      attempt (tries - 1)
  in
  attempt 100;
  fd

let send_line fd line =
  let msg = line ^ "\n" in
  ignore (Unix.write_substring fd msg 0 (String.length msg))

let read_line_fd fd =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> Alcotest.fail "daemon closed the connection before answering"
    | _ ->
      if Bytes.get byte 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
  in
  go ()

let test_socket_daemon () =
  let dir = temp_dir "service-socket" in
  let socket = Filename.concat dir "tuned.sock" in
  let cache = Filename.concat dir "cache.durable" in
  let start () =
    let stop = Atomic.make false in
    let daemon =
      Domain.spawn (fun () ->
          Service.Daemon.serve ~socket ~cache ~settings:fast ~stop
            ~read_deadline_s:1.0 ~install_signal_handlers:false ())
    in
    (stop, daemon)
  in
  let stop, daemon = start () in
  let fd = connect_client socket in
  send_line fd "PING";
  Alcotest.(check string) "ping" "PONG" (read_line_fd fd);
  send_line fd line_a;
  let first = parse_ok (read_line_fd fd) in
  Alcotest.(check string) "live tune over the wire" "tuned"
    (Service.Protocol.source_to_string first.source);
  (* A second connection shares the cache. *)
  let fd2 = connect_client socket in
  send_line fd2 line_a;
  let hit = parse_ok (read_line_fd fd2) in
  Alcotest.(check string) "second client hits the cache" "cached"
    (Service.Protocol.source_to_string hit.source);
  Unix.close fd2;
  (* Malformed wire input earns a typed line, not a dead daemon. *)
  send_line fd "TUNE cin=banana";
  (match Service.Protocol.parse_response (read_line_fd fd) with
  | Some (Service.Protocol.Error (Service.Protocol.Parse _)) -> ()
  | _ -> Alcotest.fail "expected ERR parse over the wire");
  (* An idle connection trips the read deadline. *)
  let idle = connect_client socket in
  (match Service.Protocol.parse_response (read_line_fd idle) with
  | Some (Service.Protocol.Error Service.Protocol.Timeout) -> ()
  | _ -> Alcotest.fail "expected ERR timeout for the idle connection");
  Unix.close idle;
  Unix.close fd;
  (* SIGTERM-equivalent: stop, drain, return the engine for health. *)
  Atomic.set stop true;
  let engine = Domain.join daemon in
  Alcotest.(check int) "daemon ran one tune" 1
    (Service.Engine.counters engine).tunes_run;
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists socket);
  (* Warm restart: the drained cache answers without tuning. *)
  let stop2, daemon2 = start () in
  let fd3 = connect_client socket in
  send_line fd3 line_a;
  let warm = parse_ok (read_line_fd fd3) in
  Alcotest.(check string) "restarted daemon serves from disk" "cached"
    (Service.Protocol.source_to_string warm.source);
  Alcotest.(check int) "zero trials after restart" 0 warm.trials;
  Unix.close fd3;
  Atomic.set stop2 true;
  let engine2 = Domain.join daemon2 in
  Alcotest.(check int) "restart tuned nothing" 0
    (Service.Engine.counters engine2).tunes_run

(* --- arch alias mapping: how the wire (and the gold fleet) addresses GPUs --- *)

let test_alias_known_names () =
  List.iter
    (fun (alias, (arch : Gpu_sim.Arch.t)) ->
      Alcotest.(check string) ("alias of " ^ arch.name) alias
        (Service.Protocol.alias_of_arch arch);
      match Service.Protocol.arch_of_alias alias with
      | Some a -> Alcotest.(check string) ("arch of " ^ alias) arch.name a.Gpu_sim.Arch.name
      | None -> Alcotest.failf "alias %s unmapped" alias)
    [
      ("1080ti", Gpu_sim.Arch.gtx_1080_ti);
      ("v100", Gpu_sim.Arch.v100);
      ("titanx", Gpu_sim.Arch.titan_x);
      ("gfx906", Gpu_sim.Arch.gfx906);
    ];
  Alcotest.(check bool) "case-insensitive" true
    (Service.Protocol.arch_of_alias "V100" = Some Gpu_sim.Arch.v100);
  Alcotest.(check bool) "unknown alias rejected" true
    (Service.Protocol.arch_of_alias "tpu" = None)

let test_alias_distinct () =
  let aliases = List.map Service.Protocol.alias_of_arch Gpu_sim.Arch.all in
  Alcotest.(check int) "aliases pairwise distinct"
    (List.length Gpu_sim.Arch.all)
    (List.length (List.sort_uniq compare aliases))

(* Totality + injectivity over [Arch.all], and the wire-format constraint
   (non-empty lowercase alphanumerics): together with [test_alias_distinct]
   this is the bijection the protocol doc promises — no preset can silently
   become unaddressable from the wire or the gold fleet. *)
(* Satellite of the wire-chaos PR: render/parse round-trip over EVERY
   response constructor with generated payloads, not just the handful of
   deterministic cases above.  The property is idempotence of one
   normalization pass: render, parse, re-render reproduces the line byte
   for byte.  Messages are generated pre-normalized (single-space-separated
   lowercase words, possibly empty) because the line format cannot
   represent other whitespace — that lossiness is deliberate and tested by
   [test_parse_rejects_malformed]'s control-character case. *)
let qcheck_response_roundtrip =
  let config_pool =
    List.map
      (fun line ->
        let r = spec_of_line line in
        let space =
          Core.Search_space.make ~pruned:r.pruned r.arch r.spec r.algorithm
        in
        fst (Core.Supervisor.analytic_best space))
      [ line_a; line_b; line_c ]
  in
  let open QCheck in
  let word =
    Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 8)
  in
  let message =
    Gen.map (String.concat " ") (Gen.list_size (Gen.int_range 0 4) word)
  in
  let payload =
    Gen.map
      (fun ((canon, config), (runtime_us, gflops), (source, trials)) ->
        {
          Service.Protocol.key = Service.Result_cache.key_of_canonical canon;
          source;
          runtime_us;
          gflops;
          trials;
          config;
        })
      (Gen.triple
         (Gen.pair word (Gen.oneofl config_pool))
         (Gen.pair
            (Gen.float_bound_inclusive 1e7)
            (Gen.float_bound_inclusive 1e4))
         (Gen.pair
            (Gen.oneofl
               [
                 Service.Protocol.Src_tuned;
                 Service.Protocol.Src_replayed;
                 Service.Protocol.Src_degraded;
                 Service.Protocol.Src_cached;
               ])
            (Gen.int_range 0 100_000)))
  in
  let stats =
    Gen.list_size (Gen.int_range 0 6) (Gen.pair word word)
  in
  let response =
    Gen.oneof
      [
        Gen.map (fun p -> Service.Protocol.Result p) payload;
        Gen.map
          (fun n -> Service.Protocol.Busy { retry_after_s = n })
          (Gen.int_range 0 3600);
        Gen.return Service.Protocol.Pong;
        Gen.map (fun kvs -> Service.Protocol.Stats_reply kvs) stats;
        Gen.map (fun m -> Service.Protocol.Error (Service.Protocol.Parse m)) message;
        Gen.map (fun m -> Service.Protocol.Error (Service.Protocol.Domain m)) message;
        Gen.map (fun m -> Service.Protocol.Error (Service.Protocol.Failed m)) message;
        Gen.return (Service.Protocol.Error Service.Protocol.Draining);
        Gen.return (Service.Protocol.Error Service.Protocol.Timeout);
        Gen.return (Service.Protocol.Error Service.Protocol.Deadline);
      ]
  in
  Test.make ~name:"every response constructor round-trips" ~count:500
    (make response) (fun resp ->
      let line = Service.Protocol.render_response resp in
      Service.Protocol.is_typed_line line
      &&
      match Service.Protocol.parse_response line with
      | Some resp' -> String.equal line (Service.Protocol.render_response resp')
      | None -> false)

let qcheck_alias_bijection =
  QCheck.Test.make ~name:"arch alias round-trips over Arch.all" ~count:200
    (QCheck.make (QCheck.Gen.oneofl Gpu_sim.Arch.all))
    (fun a ->
      let alias = Service.Protocol.alias_of_arch a in
      alias <> ""
      && String.for_all (function 'a' .. 'z' | '0' .. '9' -> true | _ -> false) alias
      && (match Service.Protocol.arch_of_alias alias with
         | Some b -> b.Gpu_sim.Arch.name = a.Gpu_sim.Arch.name
         | None -> false))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip + canonical addressing" `Quick
            test_request_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_parse_rejects_malformed;
          Alcotest.test_case "unknown fields ignored (forward compat)" `Quick
            test_parse_ignores_unknown_fields;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          Alcotest.test_case "arch aliases map both ways" `Quick test_alias_known_names;
          Alcotest.test_case "arch aliases distinct" `Quick test_alias_distinct;
          QCheck_alcotest.to_alcotest qcheck_alias_bijection;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip persists across reload" `Quick
            test_cache_roundtrip_persists;
          Alcotest.test_case "generation change invalidates" `Quick
            test_cache_generation_invalidation;
          Alcotest.test_case "forged keys ignored" `Quick test_cache_rejects_forged_key;
          Alcotest.test_case "corruption salvages, never lies" `Quick
            test_cache_corruption_salvage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "tune then cached" `Quick test_tune_then_cached;
          Alcotest.test_case "identical requests coalesce to one tune" `Quick
            test_identical_requests_coalesce;
          Alcotest.test_case "admission control answers BUSY" `Quick
            test_admission_control_busy;
          Alcotest.test_case "disconnect still tunes and caches" `Quick
            test_disconnect_still_tunes_and_caches;
          Alcotest.test_case "drain finishes then rejects" `Quick
            test_drain_finishes_then_rejects;
          Alcotest.test_case "ping/stats/parse errors typed" `Quick
            test_protocol_lines_through_engine;
          Alcotest.test_case "scripted runs deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "degraded answers served, not cached" `Quick
            test_degraded_not_cached;
          Alcotest.test_case "empty domains answer ERR domain" `Quick
            test_domain_error_typed;
        ] );
      ( "crash",
        [
          Alcotest.test_case "kill -9 + corruption + warm restart" `Quick
            test_kill9_corrupt_restart_warm;
          Alcotest.test_case "settings change invalidates cache" `Quick
            test_settings_change_invalidates_cache;
          Alcotest.test_case "seeded chaos campaign" `Quick test_chaos_campaign;
        ] );
      ( "audit",
        [
          Alcotest.test_case "semantic poison campaign" `Quick
            test_semantic_campaign;
          Alcotest.test_case "background scrubber evicts poison" `Quick
            test_background_scrub;
        ] );
      ( "socket",
        if deep then
          [ Alcotest.test_case "live daemon smoke" `Quick test_socket_daemon ]
        else [] );
    ]
