(* Tests for the DAG substrate: graph primitives, tree gadgets and the two
   convolution DAG builders, including the paper's exact vertex-count lemmas
   (4.7, 4.8, 4.13) and the order-of-magnitude check for Lemma 4.14. *)

module G = Dag.Graph

let test_graph_basic () =
  let g = G.create () in
  let a = G.add_input g and b = G.add_input g in
  let c = G.add_compute g ~step:1 ~preds:[ a; b ] in
  Alcotest.(check int) "vertices" 3 (G.num_vertices g);
  Alcotest.(check int) "inputs" 2 (G.num_inputs g);
  Alcotest.(check bool) "a is input" true (G.is_input g a);
  Alcotest.(check bool) "c is compute" false (G.is_input g c);
  Alcotest.(check int) "step" 1 (G.step g c);
  Alcotest.(check (list int)) "preds" [ a; b ] (G.preds g c);
  Alcotest.(check (list int)) "succs of a" [ c ] (G.succs g a);
  Alcotest.(check (list int)) "outputs" [ c ] (G.outputs g)

let test_graph_growth () =
  (* Force internal array growth past the initial capacity. *)
  let g = G.create () in
  let first = G.add_input g in
  let prev = ref first in
  for _ = 1 to 5000 do
    prev := G.add_compute g ~step:1 ~preds:[ !prev ]
  done;
  Alcotest.(check int) "vertices" 5001 (G.num_vertices g);
  Alcotest.(check (list int)) "single output" [ !prev ] (G.outputs g)

let test_graph_rejects_forward_edge () =
  let g = G.create () in
  let _ = G.add_input g in
  Alcotest.check_raises "forward edge"
    (Invalid_argument "Graph.add_compute: predecessor not yet issued") (fun () ->
      ignore (G.add_compute g ~step:1 ~preds:[ 99 ]))

let test_graph_validate_topological () =
  let g = G.create () in
  let a = G.add_input g in
  let b = G.add_compute g ~step:1 ~preds:[ a ] in
  let c = G.add_compute g ~step:1 ~preds:[ b ] in
  Alcotest.(check bool) "valid order" true (G.validate_topological g [| b; c |]);
  Alcotest.(check bool) "reversed order invalid" false (G.validate_topological g [| c; b |]);
  Alcotest.(check bool) "incomplete invalid" false (G.validate_topological g [| b |]);
  Alcotest.(check bool) "duplicated invalid" false (G.validate_topological g [| b; b |])

let test_summation_tree_counts () =
  (* Lemma 4.7: k inputs -> k-2 internal vertices + 1 output. *)
  List.iter
    (fun k ->
      let g = G.create () in
      let inputs = List.init k (fun _ -> G.add_input g) in
      let before = G.num_vertices g in
      let root = Dag.Trees.summation g ~step:1 inputs in
      let created = G.num_vertices g - before in
      Alcotest.(check int) "created = k-1" (Dag.Trees.summation_vertex_count k) created;
      Alcotest.(check (list int)) "root is sole output" [ root ] (G.outputs g);
      Alcotest.(check int) "binary in-degree" 2 (G.max_in_degree g))
    [ 2; 3; 7; 16 ]

let test_linear_combination_tree_counts () =
  (* Lemma 4.13: k inputs -> 2k-2 internal vertices + 1 output. *)
  List.iter
    (fun k ->
      let g = G.create () in
      let inputs = List.init k (fun _ -> G.add_input g) in
      let before = G.num_vertices g in
      let root = Dag.Trees.linear_combination g ~step:1 inputs in
      let created = G.num_vertices g - before in
      Alcotest.(check int) "created = 2k-1" (Dag.Trees.linear_combination_vertex_count k) created;
      Alcotest.(check (list int)) "root is sole output" [ root ] (G.outputs g))
    [ 2; 4; 9 ]

let small_spec =
  { Dag.Conv_dag.w_in = 6; h_in = 6; c_in = 2; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }

let test_conv_dag_out_size () =
  let w, h = Dag.Conv_dag.out_size small_spec in
  Alcotest.(check (pair int int)) "out size" (4, 4) (w, h);
  let strided = { small_spec with stride = 2 } in
  Alcotest.(check (pair int int)) "strided out size" (2, 2) (Dag.Conv_dag.out_size strided)

let test_conv_dag_vertex_count () =
  (* Lemma 4.8: internal+output = (2*Wker*Hker*Cin - 1) * Wout*Hout*Cout. *)
  List.iter
    (fun spec ->
      let dag = Dag.Conv_dag.build spec in
      let computed = G.num_vertices dag.graph - G.num_inputs dag.graph in
      Alcotest.(check int) "Lemma 4.8 count" (Dag.Conv_dag.expected_internal_and_output spec)
        computed)
    [
      small_spec;
      { small_spec with stride = 2 };
      { small_spec with c_in = 1; c_out = 1 };
      { Dag.Conv_dag.w_in = 5; h_in = 7; c_in = 3; c_out = 2; w_ker = 2; h_ker = 3; stride = 1 };
    ]

let test_conv_dag_output_count () =
  let dag = Dag.Conv_dag.build small_spec in
  let w_out, h_out = Dag.Conv_dag.out_size small_spec in
  Alcotest.(check int) "output ids" (w_out * h_out * small_spec.c_out)
    (Array.length dag.output_ids);
  Alcotest.(check int) "graph outputs match"
    (List.length (G.outputs dag.graph))
    (Array.length dag.output_ids)

let test_conv_dag_schedules_topological () =
  let dag = Dag.Conv_dag.build small_spec in
  let check name order =
    Alcotest.(check bool) name true (G.validate_topological dag.graph order)
  in
  check "output stationary" (Dag.Conv_dag.schedule_output_stationary dag);
  check "by step" (Dag.Conv_dag.schedule_by_step dag);
  check "blocked 1x1x1" (Dag.Conv_dag.schedule_blocked dag ~bx:1 ~by:1 ~bz:1);
  check "blocked 2x2x3" (Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:3);
  check "blocked oversized" (Dag.Conv_dag.schedule_blocked dag ~bx:10 ~by:10 ~bz:10)

let wino_spec = { Dag.Winograd_dag.tiles_w = 2; tiles_h = 2; c_in = 2; c_out = 2; e = 2; r = 3 }

let test_winograd_dag_sizes () =
  let w_out, h_out = Dag.Winograd_dag.out_size wino_spec in
  Alcotest.(check (pair int int)) "out" (4, 4) (w_out, h_out);
  let w_in, h_in = Dag.Winograd_dag.in_size wino_spec in
  Alcotest.(check (pair int int)) "in" (6, 6) (w_in, h_in);
  Alcotest.(check int) "alpha" 4 (Dag.Winograd_dag.alpha wino_spec)

let test_winograd_dag_counts () =
  let dag = Dag.Winograd_dag.build wino_spec in
  let g = dag.graph in
  let s = wino_spec in
  let a = Dag.Winograd_dag.alpha s in
  let n_tiles = s.tiles_w * s.tiles_h in
  (* Step 2 has exactly one multiplication per (tile, cout, cin, position). *)
  Alcotest.(check int) "step-2 count" (n_tiles * s.c_out * s.c_in * a * a) (G.count_step g 2);
  (* Step 3: per (tile, cout, position) a summation tree over cin values. *)
  Alcotest.(check int) "step-3 count"
    (n_tiles * s.c_out * a * a * (s.c_in - 1))
    (G.count_step g 3);
  (* Step 4: per output a linear-combination tree over alpha^2 values. *)
  let w_out, h_out = Dag.Winograd_dag.out_size s in
  Alcotest.(check int) "step-4 count"
    (w_out * h_out * s.c_out * ((2 * a * a) - 1))
    (G.count_step g 4);
  Alcotest.(check int) "outputs" (w_out * h_out * s.c_out) (Array.length dag.output_ids);
  (* Lemma 4.14 is an O() statement; the shared-transform DAG must sit below
     the unshared count it bounds, but within a constant factor of it. *)
  let bound = Dag.Winograd_dag.expected_internal_and_output_order s in
  let actual = G.num_vertices g - G.num_inputs g in
  Alcotest.(check bool) "within Lemma 4.14 order" true
    (actual <= bound && actual * 8 >= bound)

let test_winograd_schedules_topological () =
  let dag = Dag.Winograd_dag.build wino_spec in
  Alcotest.(check bool) "natural" true
    (G.validate_topological dag.graph (Dag.Winograd_dag.schedule_natural dag));
  Alcotest.(check bool) "by step" true
    (G.validate_topological dag.graph (Dag.Winograd_dag.schedule_by_step dag))

let mm_spec = { Dag.Matmul_dag.m = 4; k = 5; n = 3 }

let test_matmul_dag_counts () =
  let dag = Dag.Matmul_dag.build mm_spec in
  let computed = G.num_vertices dag.graph - G.num_inputs dag.graph in
  Alcotest.(check int) "vertex count" (Dag.Matmul_dag.expected_internal_and_output mm_spec)
    computed;
  Alcotest.(check int) "inputs" ((4 * 5) + (5 * 3)) (G.num_inputs dag.graph);
  Alcotest.(check int) "outputs" (4 * 3) (List.length (G.outputs dag.graph))

let test_matmul_dag_schedules () =
  let dag = Dag.Matmul_dag.build mm_spec in
  let check name order =
    Alcotest.(check bool) name true (G.validate_topological dag.graph order)
  in
  check "output stationary" (Dag.Matmul_dag.schedule_output_stationary dag);
  check "by step" (Dag.Matmul_dag.schedule_by_step dag);
  check "blocked 2x2" (Dag.Matmul_dag.schedule_blocked dag ~bi:2 ~bj:2);
  check "blocked oversized" (Dag.Matmul_dag.schedule_blocked dag ~bi:10 ~bj:10)

let qcheck_conv_dag_count =
  QCheck.Test.make ~name:"Lemma 4.8 holds for random specs" ~count:20
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 2) (int_range 3 6))
    (fun (c_in, c_out, stride, size) ->
      let spec =
        { Dag.Conv_dag.w_in = size; h_in = size; c_in; c_out; w_ker = 2; h_ker = 2; stride }
      in
      let dag = Dag.Conv_dag.build spec in
      G.num_vertices dag.graph - G.num_inputs dag.graph
      = Dag.Conv_dag.expected_internal_and_output spec)

let () =
  Alcotest.run "dag"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "growth" `Quick test_graph_growth;
          Alcotest.test_case "rejects forward edges" `Quick test_graph_rejects_forward_edge;
          Alcotest.test_case "validate topological" `Quick test_graph_validate_topological;
        ] );
      ( "trees",
        [
          Alcotest.test_case "summation counts (Lemma 4.7)" `Quick test_summation_tree_counts;
          Alcotest.test_case "linear combination counts (Lemma 4.13)" `Quick
            test_linear_combination_tree_counts;
        ] );
      ( "conv_dag",
        [
          Alcotest.test_case "out size" `Quick test_conv_dag_out_size;
          Alcotest.test_case "vertex count (Lemma 4.8)" `Quick test_conv_dag_vertex_count;
          Alcotest.test_case "output count" `Quick test_conv_dag_output_count;
          Alcotest.test_case "schedules topological" `Quick test_conv_dag_schedules_topological;
          QCheck_alcotest.to_alcotest qcheck_conv_dag_count;
        ] );
      ( "matmul_dag",
        [
          Alcotest.test_case "vertex counts" `Quick test_matmul_dag_counts;
          Alcotest.test_case "schedules topological" `Quick test_matmul_dag_schedules;
        ] );
      ( "winograd_dag",
        [
          Alcotest.test_case "sizes" `Quick test_winograd_dag_sizes;
          Alcotest.test_case "step counts" `Quick test_winograd_dag_counts;
          Alcotest.test_case "schedules topological" `Quick test_winograd_schedules_topological;
        ] );
    ]
