(* Tests for the CNN model zoo and the end-to-end runner: layer shape
   chaining, flop totals, winograd eligibility, tuning-cache behaviour and
   the Figure 12 invariants (every model at least matches the library; the
   1x1-heavy SqueezeNet gains the most). *)

module Spec = Conv.Conv_spec

let arch = Gpu_sim.Arch.v100

let test_layer_basic () =
  let spec = Spec.square ~c_in:3 ~size:8 ~c_out:4 ~k:3 () in
  let layer = Cnn.Layer.make ~count:2 "l" spec in
  Alcotest.(check (float 1e-6)) "flops" (2.0 *. Spec.flops spec) (Cnn.Layer.flops layer);
  Alcotest.(check bool) "eligible" true (Cnn.Layer.winograd_eligible layer);
  Alcotest.check_raises "count" (Invalid_argument "Layer.make: non-positive count") (fun () ->
      ignore (Cnn.Layer.make ~count:0 "bad" spec))

let test_layer_winograd_eligibility () =
  let strided = Spec.square ~c_in:3 ~size:8 ~c_out:4 ~k:3 ~stride:2 () in
  Alcotest.(check bool) "strided not eligible" false
    (Cnn.Layer.winograd_eligible (Cnn.Layer.make "s" strided));
  let one_by_one = Spec.square ~c_in:3 ~size:8 ~c_out:4 ~k:1 () in
  Alcotest.(check bool) "1x1 not eligible" false
    (Cnn.Layer.winograd_eligible (Cnn.Layer.make "p" one_by_one))

(* Spatial sizes must chain: each layer's input extent is plausible given the
   previous output (models list distinct shapes, so we just check every spec
   is well-formed and output extents are positive). *)
let test_models_well_formed () =
  List.iter
    (fun (m : Cnn.Models.t) ->
      Alcotest.(check bool) (m.name ^ " has layers") true (Cnn.Models.num_layers m > 0);
      List.iter
        (fun (l : Cnn.Layer.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s output positive" m.name l.name)
            true
            (Spec.h_out l.spec >= 1 && Spec.w_out l.spec >= 1))
        m.layers)
    (Cnn.Models.alexnet :: Cnn.Models.mobilenet :: Cnn.Models.evaluation_models)

let test_mobilenet_depthwise () =
  let dw =
    List.find (fun (l : Cnn.Layer.t) -> l.name = "dw8") Cnn.Models.mobilenet.layers
  in
  Alcotest.(check int) "depthwise groups" 512 dw.spec.groups;
  Alcotest.(check bool) "not winograd eligible" false (Cnn.Layer.winograd_eligible dw);
  (* A depthwise layer must be tunable end to end. *)
  Cnn.Runner.clear_cache ();
  let small =
    Cnn.Layer.make "dw-small"
      (Conv.Conv_spec.square ~groups:16 ~c_in:16 ~size:14 ~c_out:16 ~k:3 ~pad:1 ())
  in
  let t = Cnn.Runner.time_layer ~max_measurements:60 arch small in
  Alcotest.(check bool) "tuned" true (t.ours_us > 0.0 && t.library_us > 0.0)

let test_alexnet_shapes () =
  (* The canonical AlexNet activations: 227 -> 55 -> (pool) 27 -> 27 -> 13. *)
  match Cnn.Models.alexnet.layers with
  | c1 :: c2 :: c3 :: _ ->
    Alcotest.(check int) "conv1 out" 55 (Spec.h_out c1.spec);
    Alcotest.(check int) "conv2 out" 27 (Spec.h_out c2.spec);
    Alcotest.(check int) "conv3 out" 13 (Spec.h_out c3.spec)
  | _ -> Alcotest.fail "alexnet missing layers"

let test_alexnet_table2_rows () =
  Alcotest.(check int) "four rows" 4 (List.length Cnn.Models.alexnet_table2);
  let row n = List.nth Cnn.Models.alexnet_table2 n in
  Alcotest.(check int) "conv1 cin" 3 (row 0).spec.c_in;
  Alcotest.(check int) "conv1 k" 11 (row 0).spec.k_h;
  Alcotest.(check int) "conv1 stride" 4 (row 0).spec.stride;
  Alcotest.(check int) "conv3 cout" 384 (row 2).spec.c_out;
  Alcotest.(check int) "conv4 cin" 384 (row 3).spec.c_in

let test_vgg19_conv_count () =
  (* VGG-19 has 16 convolution executions. *)
  let executions =
    List.fold_left (fun acc (l : Cnn.Layer.t) -> acc + l.count) 0 Cnn.Models.vgg19.layers
  in
  Alcotest.(check int) "16 convs" 16 executions

let test_resnet_conv_counts () =
  let executions (m : Cnn.Models.t) =
    List.fold_left (fun acc (l : Cnn.Layer.t) -> acc + l.count) 0 m.layers
  in
  (* 1 stem + 16 block convs + 3 projections. *)
  Alcotest.(check int) "resnet18" 20 (executions Cnn.Models.resnet18);
  (* 1 stem + 32 block convs + 3 projections. *)
  Alcotest.(check int) "resnet34" 36 (executions Cnn.Models.resnet34)

let test_inception_rect_kernels () =
  let has_rect =
    List.exists
      (fun (l : Cnn.Layer.t) -> l.spec.k_h <> l.spec.k_w)
      Cnn.Models.inception_v3.layers
  in
  Alcotest.(check bool) "factorised kernels present" true has_rect;
  (* 1x7 with pad_w 3 preserves the 17x17 grid. *)
  let l =
    List.find (fun (l : Cnn.Layer.t) -> l.name = "mixedB/1x7") Cnn.Models.inception_v3.layers
  in
  Alcotest.(check int) "h_out" 17 (Spec.h_out l.spec);
  Alcotest.(check int) "w_out" 17 (Spec.w_out l.spec)

let test_total_flops_positive_and_ordered () =
  let f m = Cnn.Models.total_flops m in
  Alcotest.(check bool) "vgg heaviest" true
    (f Cnn.Models.vgg19 > f Cnn.Models.resnet34);
  Alcotest.(check bool) "resnet34 > resnet18" true
    (f Cnn.Models.resnet34 > f Cnn.Models.resnet18);
  Alcotest.(check bool) "squeezenet lightest" true
    (f Cnn.Models.squeezenet < f Cnn.Models.resnet18)

let test_runner_layer_timing () =
  Cnn.Runner.clear_cache ();
  let layer = Cnn.Layer.make "t" (Spec.square ~c_in:16 ~size:14 ~c_out:16 ~k:3 ~pad:1 ()) in
  let t = Cnn.Runner.time_layer ~max_measurements:60 arch layer in
  Alcotest.(check bool) "ours positive" true (t.ours_us > 0.0);
  Alcotest.(check bool) "library positive" true (t.library_us > 0.0);
  Alcotest.(check bool) "algorithms named" true
    (String.length t.ours_algorithm > 0 && String.length t.library_algorithm > 0)

let test_runner_cache_hit () =
  Cnn.Runner.clear_cache ();
  let spec = Spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:3 () in
  let a = Cnn.Runner.tuned_runtime ~max_measurements:60 arch spec Core.Config.Direct_dataflow in
  let b = Cnn.Runner.tuned_runtime ~max_measurements:60 arch spec Core.Config.Direct_dataflow in
  Alcotest.(check (float 0.0)) "cache returns identical result" a.best_runtime_us
    b.best_runtime_us

let test_runner_model_aggregates () =
  Cnn.Runner.clear_cache ();
  let model =
    {
      Cnn.Models.name = "toy";
      layers =
        [
          Cnn.Layer.make ~count:2 "a" (Spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:3 ~pad:1 ());
          Cnn.Layer.make "b" (Spec.square ~c_in:8 ~size:12 ~c_out:16 ~k:1 ());
        ];
    }
  in
  let t = Cnn.Runner.time_model ~max_measurements:60 arch model in
  Alcotest.(check int) "layer timings" 2 (List.length t.layers);
  let manual =
    List.fold_left
      (fun acc (lt : Cnn.Runner.layer_timing) ->
        acc +. (float_of_int lt.layer.count *. lt.ours_us))
      0.0 t.layers
  in
  Alcotest.(check (float 1e-9)) "weighted total" manual t.ours_total_us;
  Alcotest.(check (float 1e-9)) "speedup consistent" (t.library_total_us /. t.ours_total_us)
    t.speedup

let test_runner_log_roundtrip () =
  Cnn.Runner.clear_cache ();
  let spec = Spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:3 () in
  let fresh = Cnn.Runner.tuned_runtime ~max_measurements:60 arch spec Core.Config.Direct_dataflow in
  let path = Filename.temp_file "runner" ".log" in
  let written = Cnn.Runner.save_log path in
  Alcotest.(check int) "one entry written" 1 written;
  Cnn.Runner.clear_cache ();
  let primed = Cnn.Runner.prime_from_log path in
  Alcotest.(check int) "one entry primed" 1 primed;
  (* A primed cache answers without re-tuning and with the logged runtime. *)
  let reused = Cnn.Runner.tuned_runtime ~max_measurements:60 arch spec Core.Config.Direct_dataflow in
  Alcotest.(check int) "no measurements spent" 0 reused.measurements;
  Alcotest.(check (float 1e-4)) "same runtime" fresh.best_runtime_us reused.best_runtime_us;
  Alcotest.(check bool) "same config" true (reused.best_config = fresh.best_config);
  Sys.remove path;
  Cnn.Runner.clear_cache ()

let test_figure12_shape () =
  (* The headline invariants of Figure 12 on a reduced budget: every model is
     at least par with the library, and SqueezeNet (1x1-heavy, tiny layers)
     gains the most. *)
  Cnn.Runner.clear_cache ();
  let timings =
    List.map
      (fun m -> Cnn.Runner.time_model ~max_measurements:80 arch m)
      [ Cnn.Models.squeezenet; Cnn.Models.resnet18 ]
  in
  List.iter
    (fun (t : Cnn.Runner.model_timing) ->
      Alcotest.(check bool) (t.model ^ " at least par") true (t.speedup > 0.95))
    timings;
  match timings with
  | [ squeezenet; resnet ] ->
    Alcotest.(check bool)
      (Printf.sprintf "squeezenet %.2f > resnet %.2f" squeezenet.speedup resnet.speedup)
      true
      (squeezenet.speedup > resnet.speedup)
  | _ -> Alcotest.fail "expected two timings"

(* --- memo accounting: cache hits are free Replayed tasks --- *)

(* A two-layer model whose layers share one shape: the second layer's
   candidates must be served from the memo table — reported as [Replayed]
   tasks that charge the session budget nothing — and a warm re-run must
   reproduce the cold golden cost bit for bit. *)
let test_memo_replayed_accounting () =
  Cnn.Runner.clear_cache ();
  let spec = Spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:3 () in
  let model =
    {
      Cnn.Models.name = "Mini-Twin";
      layers = [ Cnn.Layer.make "a" spec; Cnn.Layer.make ~count:2 "b" spec ];
    }
  in
  Alcotest.(check int) "two candidates per layer" 2
    (List.length (Cnn.Runner.candidates (List.hd model.layers)));
  let policy = Core.Supervisor.default_policy in
  let cold = Cnn.Runner.time_model ~max_measurements:60 ~supervise:policy arch model in
  let report = Option.get cold.health in
  let replayed, live =
    List.partition
      (fun (t : Core.Supervisor.task_report) ->
        match t.outcome with Core.Supervisor.Replayed _ -> true | _ -> false)
      report.tasks
  in
  Alcotest.(check int) "layer b's candidates replayed" 2 (List.length replayed);
  Alcotest.(check int) "layer a's candidates tuned live" 2 (List.length live);
  List.iter
    (fun (t : Core.Supervisor.task_report) ->
      Alcotest.(check (float 0.0)) ("replay is free: " ^ t.key) 0.0 t.spent_us)
    replayed;
  (* Warm re-run: every task replays, the whole session costs nothing, and
     the timings are identical to the cold run's — the invariant the gold
     regress harness leans on. *)
  let warm = Cnn.Runner.time_model ~max_measurements:60 ~supervise:policy arch model in
  let wreport = Option.get warm.health in
  List.iter
    (fun (t : Core.Supervisor.task_report) ->
      match t.outcome with
      | Core.Supervisor.Replayed _ -> ()
      | o -> Alcotest.failf "warm task %s not replayed (%s)" t.key (Core.Supervisor.outcome_label o))
    wreport.tasks;
  Alcotest.(check (float 0.0)) "warm session spends no budget" 0.0
    wreport.budget_spent_us;
  Alcotest.(check (float 0.0)) "golden cost identical warm vs cold"
    cold.ours_total_us warm.ours_total_us;
  List.iter2
    (fun (c : Cnn.Runner.layer_timing) (w : Cnn.Runner.layer_timing) ->
      Alcotest.(check (float 0.0)) ("layer " ^ c.layer.name) c.ours_us w.ours_us)
    cold.layers warm.layers;
  Cnn.Runner.clear_cache ()

(* [prime_result]/[find_result]: a primed key answers without tuning and
   surfaces through [layer_timing.ours_result]. *)
let test_prime_and_find_result () =
  Cnn.Runner.clear_cache ();
  (* 1x1 kernel: not Winograd-eligible, so the direct dataflow is the only
     candidate and the primed result must win outright. *)
  let spec = Spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:1 () in
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let fake =
    {
      Core.Tuner.best_config = Core.Search_space.default_config space;
      best_runtime_us = 0.125;
      best_gflops = 1.0;
      measurements = 7;
      converged_at = 0;
      history = [];
      space_size = 0.0;
      faults = Core.Tuner.no_faults;
      stop = Core.Tuner.Converged;
    }
  in
  Alcotest.(check bool) "nothing memoised yet" true
    (Cnn.Runner.find_result arch spec Core.Config.Direct_dataflow = None);
  Alcotest.(check bool) "primed" true
    (Cnn.Runner.prime_result arch spec Core.Config.Direct_dataflow fake);
  Alcotest.(check bool) "second prime refused" false
    (Cnn.Runner.prime_result arch spec Core.Config.Direct_dataflow fake);
  let t = Cnn.Runner.time_layer ~max_measurements:60 arch (Cnn.Layer.make "p" spec) in
  Alcotest.(check (float 0.0)) "primed runtime served" 0.125 t.ours_us;
  (match t.ours_result with
  | Some r ->
    Alcotest.(check int) "primed trial count surfaced" 7 r.measurements;
    Alcotest.(check bool) "primed config surfaced" true (r.best_config = fake.best_config)
  | None -> Alcotest.fail "ours_result missing for tuned layer");
  Cnn.Runner.clear_cache ()

let () =
  Alcotest.run "cnn"
    [
      ( "layer",
        [
          Alcotest.test_case "basic" `Quick test_layer_basic;
          Alcotest.test_case "winograd eligibility" `Quick test_layer_winograd_eligibility;
        ] );
      ( "models",
        [
          Alcotest.test_case "well formed" `Quick test_models_well_formed;
          Alcotest.test_case "alexnet shapes" `Quick test_alexnet_shapes;
          Alcotest.test_case "table 2 rows" `Quick test_alexnet_table2_rows;
          Alcotest.test_case "vgg19 conv count" `Quick test_vgg19_conv_count;
          Alcotest.test_case "resnet conv counts" `Quick test_resnet_conv_counts;
          Alcotest.test_case "inception rect kernels" `Quick test_inception_rect_kernels;
          Alcotest.test_case "mobilenet depthwise" `Slow test_mobilenet_depthwise;
          Alcotest.test_case "flop ordering" `Quick test_total_flops_positive_and_ordered;
        ] );
      ( "runner",
        [
          Alcotest.test_case "layer timing" `Slow test_runner_layer_timing;
          Alcotest.test_case "cache hit" `Slow test_runner_cache_hit;
          Alcotest.test_case "model aggregates" `Slow test_runner_model_aggregates;
          Alcotest.test_case "log roundtrip" `Slow test_runner_log_roundtrip;
          Alcotest.test_case "figure 12 shape" `Slow test_figure12_shape;
          Alcotest.test_case "memo hits are free replays" `Slow
            test_memo_replayed_accounting;
          Alcotest.test_case "prime/find result" `Quick test_prime_and_find_result;
        ] );
    ]
