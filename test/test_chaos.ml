(* Combined chaos suite — backs the [@chaos-smoke] dune alias.

   Run-level supervision under everything at once: injected GPU measurement
   faults, filesystem corruption of the tuning journals, crashed pool
   workers and a finite global budget.  Asserts the supervisor's contracts:
   every campaign terminates, every reported outcome is truthful, degraded
   tasks still carry a valid (shared-memory-feasible) configuration, and
   with no injectors enabled supervision is bit-identical to the plain
   engine.

   CHAOS_DEEP=1 widens the seed sweep (32 campaign seeds instead of 4) and
   raises the qcheck case counts. *)

let deep = Sys.getenv_opt "CHAOS_DEEP" <> None
let campaign_seeds = List.init (if deep then 32 else 4) (fun i -> i)
let qcheck_count = if deep then 500 else 60

(* Salvage warnings from deliberately corrupted journals are expected noise
   here; the verbosity hook keeps the test output clean. *)
let () = Util.Log.set_quiet true

let arch = Gpu_sim.Arch.v100

let spec_3x3 =
  Conv.Conv_spec.make ~c_in:16 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 ()

let spec_1x1 = Conv.Conv_spec.make ~c_in:32 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:1 ~k_w:1 ()

(* Two shapes, one Winograd-eligible: three tuning tasks per campaign. *)
let toy_model =
  {
    Cnn.Models.name = "toy";
    layers = [ Cnn.Layer.make ~count:2 "a" spec_3x3; Cnn.Layer.make "b" spec_1x1 ];
  }

let space () = Core.Search_space.make arch spec_3x3 Core.Config.Direct_dataflow

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let shmem_feasible spec (cfg : Core.Config.t) =
  Core.Config.shmem_bytes spec cfg <= Gpu_sim.Faults.block_budget_bytes arch

(* ------------------------------------------------------------------ *)
(* Analytic degradation. *)

let test_analytic_best_deterministic () =
  let s = space () in
  let c1, r1 = Core.Supervisor.analytic_best s in
  let c2, r2 = Core.Supervisor.analytic_best (space ()) in
  Alcotest.(check bool) "same config" true (c1 = c2);
  Alcotest.(check (float 0.0)) "same runtime" r1 r2;
  Alcotest.(check bool) "validates" true (Core.Search_space.validate s c1 = Ok ());
  Alcotest.(check bool) "positive finite runtime" true (Float.is_finite r1 && r1 > 0.0)

(* qcheck: for arbitrary layer shapes and candidate counts, the analytic
   fallback is always a member of the pruned domain — hence launchable and
   within the per-block shared-memory budget the fault injector measures
   against. *)
let analytic_degraded_always_valid =
  let gen =
    QCheck.Gen.(
      let* c_in = 1 -- 64 in
      let* c_out = 1 -- 64 in
      let* hw = 4 -- 32 in
      let* k = oneofl [ 1; 3; 5 ] in
      let* wino = bool in
      let* candidates = 1 -- 64 in
      return (c_in, c_out, hw, k, wino, candidates))
  in
  let print (c_in, c_out, hw, k, wino, candidates) =
    Printf.sprintf "c_in=%d c_out=%d hw=%d k=%d wino=%b candidates=%d" c_in c_out hw k
      wino candidates
  in
  QCheck.Test.make ~count:qcheck_count ~name:"analytic degraded config always valid"
    (QCheck.make ~print gen)
    (fun (c_in, c_out, hw, k, wino, candidates) ->
      let pad = k / 2 in
      let spec =
        Conv.Conv_spec.make ~c_in ~h_in:hw ~w_in:hw ~c_out ~k_h:k ~k_w:k ~pad ()
      in
      let algorithm =
        if wino && k = 3 then Core.Config.Winograd_dataflow 2
        else Core.Config.Direct_dataflow
      in
      match Core.Search_space.make arch spec algorithm with
      | exception Invalid_argument _ -> true (* empty domain: nothing to degrade to *)
      | space ->
        let cfg, runtime_us = Core.Supervisor.analytic_best ~candidates space in
        Core.Search_space.validate space cfg = Ok ()
        && shmem_feasible spec cfg
        && Float.is_finite runtime_us && runtime_us > 0.0)

(* ------------------------------------------------------------------ *)
(* Circuit breaker. *)

(* Every launch fails persistently: the breaker must trip and the task must
   degrade to the analytic configuration instead of failing. *)
let test_breaker_trips_to_analytic () =
  let poison = { Gpu_sim.Faults.default with launch_shmem_frac = 0.0 } in
  let session = Core.Supervisor.create ~tasks:1 () in
  let s = space () in
  let outcome =
    Core.Supervisor.tune_task session ~key:"poisoned" ~seed:3 ~max_measurements:40
      ~faults:poison ~space:s ()
  in
  (match outcome with
  | Core.Supervisor.Degraded { reason; config; runtime_us; faults } ->
    (match reason with
    | Core.Supervisor.Breaker_open { consecutive; last } ->
      Alcotest.(check bool) "tripped at or past the threshold" true
        (consecutive >= Core.Supervisor.default_policy.breaker_k);
      (match last with
      | Some (Core.Supervisor.Measurement (Gpu_sim.Measure.Launch_failure _)) -> ()
      | _ -> Alcotest.fail "expected a launch failure as the last cause")
    | r -> Alcotest.fail ("expected Breaker_open, got " ^ Core.Supervisor.degrade_reason_to_string r));
    Alcotest.(check bool) "analytic config validates" true
      (Core.Search_space.validate s config = Ok ());
    Alcotest.(check bool) "analytic config fits shared memory" true
      (shmem_feasible spec_3x3 config);
    Alcotest.(check bool) "finite runtime, not infinity" true
      (Float.is_finite runtime_us && runtime_us > 0.0);
    Alcotest.(check bool) "every trial failed" true (faults.failed >= 5)
  | o -> Alcotest.fail ("expected Degraded, got " ^ Core.Supervisor.outcome_label o));
  let report = Core.Supervisor.report session in
  Alcotest.(check int) "one task reported" 1 (List.length report.tasks);
  Alcotest.(check string) "reported as degraded" "degraded"
    (Core.Supervisor.outcome_label (List.hd report.tasks).outcome);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rendering mentions the breaker" true
    (contains (Core.Supervisor.report_to_string report) "breaker open")

let test_breaker_disabled_never_trips () =
  let poison = { Gpu_sim.Faults.default with launch_shmem_frac = 0.0 } in
  let policy = { Core.Supervisor.default_policy with breaker_k = 0 } in
  let session = Core.Supervisor.create ~policy ~tasks:1 () in
  let outcome =
    Core.Supervisor.tune_task session ~key:"poisoned" ~seed:3 ~max_measurements:40
      ~faults:poison ~space:(space ()) ()
  in
  match outcome with
  | Core.Supervisor.Degraded { reason = Core.Supervisor.Breaker_open { consecutive; _ }; faults; _ } ->
    (* No breaker: the whole trial budget burns down first, and the degrade
       reason reports the full failure streak. *)
    Alcotest.(check int) "whole budget failed" 40 faults.failed;
    Alcotest.(check int) "streak covers the budget" 40 consecutive
  | o -> Alcotest.fail ("expected Degraded breaker-open, got " ^ Core.Supervisor.outcome_label o)

(* ------------------------------------------------------------------ *)
(* Budget. *)

let test_budget_fair_share () =
  let b = Core.Supervisor.Budget.create ~total_us:100.0 ~tasks:2 in
  Alcotest.(check (float 1e-9)) "first share" 50.0 (Core.Supervisor.Budget.begin_task b);
  Core.Supervisor.Budget.charge b 30.0;
  (* The first task underspent: its surplus flows to the second. *)
  Alcotest.(check (float 1e-9)) "surplus redistributed" 70.0
    (Core.Supervisor.Budget.begin_task b);
  Core.Supervisor.Budget.charge b 80.0;
  Alcotest.(check (float 1e-9)) "overshoot clamps remaining at 0" 0.0
    (Core.Supervisor.Budget.remaining_us b);
  (* Stragglers beyond the announced count get whatever is left. *)
  Alcotest.(check (float 1e-9)) "straggler share" 0.0
    (Core.Supervisor.Budget.begin_task b);
  Core.Supervisor.Budget.charge b nan;
  Core.Supervisor.Budget.charge b (-5.0);
  Alcotest.(check (float 1e-9)) "garbage charges ignored" 110.0
    (Core.Supervisor.Budget.spent_us b)

(* Every task trips its breaker early, spending almost none of its fair
   share.  The surplus must flow forward — each later task's granted share
   can only grow — and must never resurrect a tripped task: each key is
   reported exactly once, stays degraded-by-breaker (not converted to a
   budget verdict by the windfall), and the leftover budget survives as
   remaining, unspent. *)
let test_surplus_never_resurrects_tripped_tasks () =
  let poison = { Gpu_sim.Faults.default with launch_shmem_frac = 0.0 } in
  let policy = { Core.Supervisor.default_policy with budget_us = 5.0e7 } in
  let session = Core.Supervisor.create ~policy ~tasks:3 () in
  let keys = [ "t0"; "t1"; "t2" ] in
  List.iteri
    (fun i key ->
      match
        Core.Supervisor.tune_task session ~key ~seed:i ~max_measurements:40
          ~faults:poison ~space:(space ()) ()
      with
      | Core.Supervisor.Degraded { reason = Core.Supervisor.Breaker_open _; _ } -> ()
      | o ->
        Alcotest.fail
          (Printf.sprintf "task %s: expected breaker-open, got %s" key
             (Core.Supervisor.outcome_label o)))
    keys;
  let report = Core.Supervisor.report session in
  Alcotest.(check (list string)) "each task reported exactly once" keys
    (List.map (fun (t : Core.Supervisor.task_report) -> t.key) report.tasks);
  List.iter
    (fun (t : Core.Supervisor.task_report) ->
      (match t.outcome with
      | Core.Supervisor.Degraded { reason = Core.Supervisor.Breaker_open _; _ } -> ()
      | o ->
        Alcotest.fail
          (Printf.sprintf "%s resurrected as %s" t.key
             (Core.Supervisor.outcome_label o)));
      Alcotest.(check bool) (t.key ^ " spent within its granted share") true
        (t.spent_us <= t.share_us +. 1e-6))
    report.tasks;
  (* Breaker trips are cheap, so each successive share strictly absorbs the
     predecessor's surplus. *)
  let shares = List.map (fun (t : Core.Supervisor.task_report) -> t.share_us) report.tasks in
  (match shares with
  | [ s0; s1; s2 ] ->
    Alcotest.(check (float 1e-6)) "first share is the plain third" (5.0e7 /. 3.0) s0;
    Alcotest.(check bool) "surplus flows forward, monotonically" true
      (s1 >= s0 -. 1e-6 && s2 >= s1 -. 1e-6)
  | _ -> Alcotest.fail "expected three shares");
  Alcotest.(check bool) "windfall left unspent, not burned on tripped tasks" true
    (report.budget_spent_us < 0.5 *. report.budget_total_us
    && Core.Supervisor.budget_remaining_us session > 0.5 *. report.budget_total_us)

let test_zero_budget_degrades_analytically () =
  let policy = { Core.Supervisor.default_policy with budget_us = 0.0 } in
  let session = Core.Supervisor.create ~policy ~tasks:1 () in
  let s = space () in
  (match
     Core.Supervisor.tune_task session ~key:"starved" ~seed:0 ~max_measurements:40
       ~space:s ()
   with
  | Core.Supervisor.Degraded { reason = Core.Supervisor.Budget_exhausted _; config; runtime_us; faults } ->
    Alcotest.(check bool) "config validates" true
      (Core.Search_space.validate s config = Ok ());
    Alcotest.(check bool) "finite runtime" true (Float.is_finite runtime_us && runtime_us > 0.0);
    Alcotest.(check (float 0.0)) "no virtual time spent" 0.0 faults.elapsed_us
  | o -> Alcotest.fail ("expected Degraded budget-exhausted, got " ^ Core.Supervisor.outcome_label o));
  let report = Core.Supervisor.report session in
  Alcotest.(check (float 0.0)) "nothing charged" 0.0 report.budget_spent_us

let test_finite_budget_stops_and_accounts () =
  (* Enough budget for some measuring but not the whole search: the run
     stops at the deadline, keeps its measured best, and the charge is
     bounded by one in-flight batch of overshoot. *)
  let policy = { Core.Supervisor.default_policy with budget_us = 2000.0 } in
  let session = Core.Supervisor.create ~policy ~tasks:1 () in
  let outcome =
    Core.Supervisor.tune_task session ~key:"bounded" ~seed:1 ~max_measurements:400
      ~space:(space ()) ()
  in
  (match outcome with
  | Core.Supervisor.Tuned r ->
    Alcotest.(check bool) "stopped by the deadline" true (r.stop = Core.Tuner.Deadline_reached);
    Alcotest.(check bool) "measured something" true (r.measurements > 0)
  | Core.Supervisor.Degraded _ -> () (* budget too tight for a single success: also legal *)
  | o -> Alcotest.fail ("unexpected outcome " ^ Core.Supervisor.outcome_label o));
  let report = Core.Supervisor.report session in
  Alcotest.(check bool) "budget accounted" true (report.budget_spent_us > 0.0);
  let task = List.hd report.tasks in
  Alcotest.(check (float 1e-9)) "task spend equals session spend" report.budget_spent_us
    task.spent_us

let test_cached_tasks_donate_budget () =
  let policy = { Core.Supervisor.default_policy with budget_us = 1000.0 } in
  let session = Core.Supervisor.create ~policy ~tasks:2 () in
  let r =
    match Core.Tuner.tune_outcome ~seed:0 ~max_measurements:30 ~space:(space ()) () with
    | Ok r -> r
    | Error _ -> Alcotest.fail "plain tune failed"
  in
  (match Core.Supervisor.record_cached session ~key:"memo-hit" r with
  | Core.Supervisor.Replayed _ -> ()
  | o -> Alcotest.fail ("expected Replayed, got " ^ Core.Supervisor.outcome_label o));
  Alcotest.(check (float 1e-9)) "cache hit charged nothing" 1000.0
    (Core.Supervisor.budget_remaining_us session);
  let report = Core.Supervisor.report session in
  Alcotest.(check (float 1e-9)) "share granted, not spent" 500.0
    (List.hd report.tasks).share_us

(* ------------------------------------------------------------------ *)
(* Outcome taxonomy odds and ends. *)

let test_failed_task_and_causes () =
  let session = Core.Supervisor.create ~tasks:1 () in
  let cause = Core.Supervisor.Empty_domain "no valid configuration" in
  (match Core.Supervisor.record_failed session ~key:"doomed" cause with
  | Core.Supervisor.Failed _ -> ()
  | o -> Alcotest.fail ("expected Failed, got " ^ Core.Supervisor.outcome_label o));
  let report = Core.Supervisor.report session in
  let task = List.hd report.tasks in
  Alcotest.(check bool) "no usable runtime" true
    (Core.Supervisor.outcome_runtime_us task.outcome = None);
  (* Every cause renders; spot-check the subsystem prefixes. *)
  let strings =
    List.map Core.Supervisor.cause_to_string
      [
        Core.Supervisor.Invalid_config
          (Core.Search_space.Tile_not_in_domain { tile = (1, 2, 3) });
        Core.Supervisor.Measurement (Gpu_sim.Measure.No_valid_sample { attempts = 7 });
        Core.Supervisor.Storage_corruption { dropped = 2 };
        Core.Supervisor.Pool_degraded { restarts = 33 };
        cause;
      ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("non-empty: " ^ s) true (String.length s > 0))
    strings

let test_replayed_outcome_from_journal () =
  let journal = Filename.temp_file "chaos" ".journal" in
  Sys.remove journal;
  let run () =
    let session = Core.Supervisor.create ~tasks:1 () in
    Core.Supervisor.tune_task session ~key:"journalled" ~seed:7 ~max_measurements:30
      ~faults:Gpu_sim.Faults.default ~journal ~space:(space ()) ()
  in
  let first = run () in
  let second = run () in
  (match (first, second) with
  | Core.Supervisor.Tuned a, Core.Supervisor.Replayed b ->
    Alcotest.(check bool) "replay reproduces the result" true
      (a.Core.Tuner.best_config = b.Core.Tuner.best_config
      && a.best_runtime_us = b.best_runtime_us
      && a.history = b.history);
    Alcotest.(check (float 0.0)) "replay is free" 0.0 b.faults.elapsed_us
  | a, b ->
    Alcotest.fail
      (Printf.sprintf "expected Tuned then Replayed, got %s then %s"
         (Core.Supervisor.outcome_label a) (Core.Supervisor.outcome_label b)));
  Sys.remove journal

let test_pool_crashes_surface_in_report () =
  let pool = Util.Pool.default () in
  let session = Core.Supervisor.create ~tasks:1 () in
  let before = Util.Pool.restarts pool in
  for _ = 1 to 3 do
    Util.Pool.submit pool (fun () -> failwith "chaos: hostile task")
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Util.Pool.restarts pool < before + 3 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "crashes absorbed" true (Util.Pool.restarts pool >= before + 3);
  (* Tuning on the recovered pool is unaffected... *)
  let outcome =
    Core.Supervisor.tune_task session ~key:"after-crashes" ~seed:11 ~max_measurements:30
      ~space:(space ()) ()
  in
  let plain = Core.Tuner.tune ~seed:11 ~max_measurements:30 ~space:(space ()) () in
  (match outcome with
  | Core.Supervisor.Tuned r ->
    Alcotest.(check bool) "same result as the plain engine" true
      (r.Core.Tuner.best_config = plain.best_config
      && r.best_runtime_us = plain.best_runtime_us)
  | o -> Alcotest.fail ("expected Tuned, got " ^ Core.Supervisor.outcome_label o));
  (* ...but the report does not hide that workers died. *)
  let report = Core.Supervisor.report session in
  Alcotest.(check bool) "restarts surfaced" true (report.pool_restarts >= 3);
  Alcotest.(check bool) "restarts folded into fault stats" true
    (report.faults.pool_restarts >= 3)

(* ------------------------------------------------------------------ *)
(* Whole-model supervision. *)

let clean_layer_timings model ~seed ~max_measurements =
  Cnn.Runner.clear_cache ();
  let t = Cnn.Runner.time_model ~seed ~max_measurements arch model in
  (t, List.map (fun (l : Cnn.Runner.layer_timing) -> (l.ours_us, l.ours_algorithm)) t.layers)

let test_supervised_fault_free_bit_identical () =
  let clean, clean_layers = clean_layer_timings toy_model ~seed:5 ~max_measurements:40 in
  Cnn.Runner.clear_cache ();
  let sup =
    Cnn.Runner.time_model ~seed:5 ~max_measurements:40
      ~supervise:Core.Supervisor.default_policy arch toy_model
  in
  Alcotest.(check bool) "layer timings identical" true
    (clean_layers
    = List.map (fun (l : Cnn.Runner.layer_timing) -> (l.ours_us, l.ours_algorithm)) sup.layers);
  Alcotest.(check (float 0.0)) "totals identical" clean.ours_total_us sup.ours_total_us;
  match sup.health with
  | None -> Alcotest.fail "supervised run must report health"
  | Some h ->
    Alcotest.(check int) "three tasks" 3 (List.length h.tasks);
    List.iter
      (fun (t : Core.Supervisor.task_report) ->
        Alcotest.(check string) ("outcome of " ^ t.key) "tuned"
          (Core.Supervisor.outcome_label t.outcome))
      h.tasks;
    Alcotest.(check int) "no failures absent faults" 0 h.faults.failed

(* One campaign: supervised whole-model tuning with seed-varied GPU faults
   and journals, then journal corruption, then a resumed run that must
   reproduce the first run's timings exactly. *)
let campaign seed =
  let faults =
    {
      Gpu_sim.Faults.default with
      fault_seed = seed;
      timeout_rate = 0.04 +. (0.01 *. float_of_int (seed mod 5));
      nan_rate = 0.02 +. (0.01 *. float_of_int (seed mod 3));
      launch_shmem_frac = (if seed mod 3 = 0 then 0.5 else 0.92);
    }
  in
  let dir = temp_dir (Printf.sprintf "chaos%d" seed) in
  let run () =
    Cnn.Runner.clear_cache ();
    Cnn.Runner.time_model ~seed ~max_measurements:30 ~faults ~journal_dir:dir
      ~supervise:Core.Supervisor.default_policy arch toy_model
  in
  let first = run () in
  let check_health label (t : Cnn.Runner.model_timing) =
    Alcotest.(check bool) (label ^ ": positive total") true
      (Float.is_finite t.ours_total_us && t.ours_total_us > 0.0);
    match t.health with
    | None -> Alcotest.fail (label ^ ": missing health report")
    | Some h ->
      Alcotest.(check int) (label ^ ": three tasks") 3 (List.length h.tasks);
      let spent =
        List.fold_left (fun acc (t : Core.Supervisor.task_report) -> acc +. t.spent_us)
          0.0 h.tasks
      in
      Alcotest.(check bool) (label ^ ": spend accounted") true
        (Float.abs (spent -. h.budget_spent_us) < 1e-6);
      List.iter
        (fun (t : Core.Supervisor.task_report) ->
          match Core.Supervisor.outcome_runtime_us t.outcome with
          | Some us ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s usable runtime" label t.key)
              true
              (Float.is_finite us && us > 0.0)
          | None -> Alcotest.fail (label ^ ": no Failed outcomes expected here"))
        h.tasks;
      h
  in
  let h1 = check_health "first" first in
  ignore h1;
  (* Corrupt every journal the run left behind, deterministically. *)
  let rng = Util.Rng.create (0x5eed + seed) in
  let journals = Sys.readdir dir in
  Array.sort compare journals;
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      for _ = 1 to 2 do
        ignore (Util.Fs_faults.inject rng path)
      done)
    journals;
  Alcotest.(check bool) "journals were written" true (Array.length journals > 0);
  (* Resume: salvaged prefixes replay free, the damaged suffixes re-measure
     to the same values — the model timings must not move. *)
  let second = run () in
  let h2 = check_health "resumed" second in
  Alcotest.(check (float 0.0))
    (Printf.sprintf "seed %d: resumed total identical" seed)
    first.ours_total_us second.ours_total_us;
  Alcotest.(check bool) "resume replayed or re-measured" true
    (h2.faults.replayed >= 0);
  (* Bounded-budget campaign on the same seed: must terminate with every
     outcome truthful; degraded tasks carry their reason. *)
  Cnn.Runner.clear_cache ();
  let policy = { Core.Supervisor.default_policy with budget_us = 15_000.0 } in
  let bounded =
    Cnn.Runner.time_model ~seed ~max_measurements:100 ~faults ~supervise:policy arch
      toy_model
  in
  (match bounded.health with
  | None -> Alcotest.fail "bounded: missing health report"
  | Some h ->
    Alcotest.(check bool) "bounded: something was charged" true (h.budget_spent_us > 0.0);
    List.iter
      (fun (t : Core.Supervisor.task_report) ->
        match t.outcome with
        | Core.Supervisor.Failed c ->
          Alcotest.fail ("bounded: unexpected failure: " ^ Core.Supervisor.cause_to_string c)
        | Core.Supervisor.Degraded { runtime_us; _ } ->
          Alcotest.(check bool) "bounded: degraded runtime finite" true
            (Float.is_finite runtime_us && runtime_us > 0.0)
        | Core.Supervisor.Tuned _ | Core.Supervisor.Replayed _ -> ())
      h.tasks);
  (* Leave no temp litter behind. *)
  Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
  Unix.rmdir dir

let test_chaos_campaign () = List.iter campaign campaign_seeds

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "analytic",
        [
          Alcotest.test_case "deterministic and valid" `Quick test_analytic_best_deterministic;
          QCheck_alcotest.to_alcotest analytic_degraded_always_valid;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips to analytic config" `Quick test_breaker_trips_to_analytic;
          Alcotest.test_case "disabled breaker burns the budget" `Quick
            test_breaker_disabled_never_trips;
        ] );
      ( "budget",
        [
          Alcotest.test_case "fair share redistribution" `Quick test_budget_fair_share;
          Alcotest.test_case "surplus never resurrects tripped tasks" `Quick
            test_surplus_never_resurrects_tripped_tasks;
          Alcotest.test_case "zero budget degrades analytically" `Quick
            test_zero_budget_degrades_analytically;
          Alcotest.test_case "finite budget stops and accounts" `Quick
            test_finite_budget_stops_and_accounts;
          Alcotest.test_case "cached tasks donate their share" `Quick
            test_cached_tasks_donate_budget;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "failed tasks and cause rendering" `Quick
            test_failed_task_and_causes;
          Alcotest.test_case "journal replay reports Replayed" `Quick
            test_replayed_outcome_from_journal;
          Alcotest.test_case "pool crashes surface in report" `Quick
            test_pool_crashes_surface_in_report;
        ] );
      ( "whole-model",
        [
          Alcotest.test_case "fault-free supervision is bit-identical" `Quick
            test_supervised_fault_free_bit_identical;
          Alcotest.test_case "seeded chaos campaign" `Quick test_chaos_campaign;
        ] );
    ]
